package harness

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/server"
	"mccp/internal/sim"
)

// This file is experiment E18: stage attribution. E13 reports per-class
// end-to-end latency percentiles; E18 re-runs the same open-loop sweep
// with the lifecycle tracer attached at sample rate 1 and decomposes
// every delivered packet's latency into the five pipeline stages (class
// queue, scheduler, crossbar upload, core service, output drain). The
// stages tile each span exactly — their durations sum to the
// enqueue-to-completion time — so the table's per-stage numbers reconcile
// with E13's percentiles bit-for-bit: the tracer only reads the engine
// clock, and the traced run's LoadPoint is identical to the untraced
// one. Below saturation the core stage dominates; past the knee the
// queue stage absorbs the growth, and under qos-priority the voice
// class's queue component stays flat while background's explodes — the
// stage-level view of what the reservation buys.

// DefaultStagePoints is the E18 sweep: underload, the knee, and twice
// saturation.
var DefaultStagePoints = []float64{0.25, 0.5, 1.0, 1.5, 2.0}

// StageCell is one class's stage decomposition at one load point,
// computed over delivered (OutcomeOK) spans only — the same population
// as E13's latency percentiles.
type StageCell struct {
	Class qos.Class
	// Spans counts the delivered spans decomposed.
	Spans uint64
	// TotalP50/TotalP99 are percentiles of span end-to-end durations —
	// bit-identical to the E13 cell's P50/P99 (same samples, same
	// nearest-rank method).
	TotalP50, TotalP99 sim.Time
	// P50/P99 are per-stage duration percentiles, indexed by obs.Stage.
	// Stage percentiles are marginal (computed per stage), so they need
	// not sum to the total percentiles; the Sum fields reconcile instead.
	P50, P99 [obs.NumStages]sim.Time
	// SumTotal is the integer sum of every delivered span's duration;
	// SumStages the per-stage sums. SumTotal == Σ SumStages exactly —
	// the tiling identity the obs smoke gate asserts.
	SumTotal  sim.Time
	SumStages [obs.NumStages]sim.Time
}

// StagePoint is one (policy, offered) traced measurement: the E13 point
// (bit-identical to the untraced run) plus the stage decomposition.
type StagePoint struct {
	LoadPoint
	// TraceDigest fingerprints the span stream (host timestamps
	// excluded); Spans counts every recorded span, all outcomes.
	TraceDigest uint64
	Spans       int
	Cells       []StageCell
}

// StageCell returns the point's stage cell for a class (zero if absent).
func (p StagePoint) StageCell(c qos.Class) StageCell {
	for _, cell := range p.Cells {
		if cell.Class == c {
			return cell
		}
	}
	return StageCell{Class: c}
}

// StageCurveConfig parameterizes StageAttribution.
type StageCurveConfig struct {
	// Policies are the dispatch policies swept (default first-idle then
	// qos-priority, the E13 contrast).
	Policies []string
	// Offered are the load points (default DefaultStagePoints).
	Offered []float64
	// Load carries the base E13 knobs (mix, window size, shaper, seed).
	Load LoadCurveConfig
}

func (c *StageCurveConfig) fill() {
	if len(c.Policies) == 0 {
		c.Policies = []string{"first-idle", "qos-priority"}
	}
	if len(c.Offered) == 0 {
		c.Offered = DefaultStagePoints
	}
	c.Load.fill()
}

// StageCurveResult is the full E18 sweep.
type StageCurveResult struct {
	SaturationMbps float64
	Points         []StagePoint // policy-major, offered ascending
}

// StageAttribution runs E18: the E13 sweep with the tracer attached,
// every delivered packet's latency decomposed by stage. Deterministic:
// the sampler is seeded, every duration is virtual-time, and the traced
// pipeline is bit-identical to the untraced one.
func StageAttribution(cfg StageCurveConfig) StageCurveResult {
	cfg.fill()
	sat := SaturationMbps(cfg.Load.Mix, cfg.Load.SatPackets)
	res := StageCurveResult{SaturationMbps: sat}
	for _, pol := range cfg.Policies {
		for _, offered := range cfg.Offered {
			res.Points = append(res.Points, StagePointRun(pol, offered, sat, cfg.Load))
		}
	}
	return res
}

// StagePointRun measures one (policy, offered) point with the tracer on
// at sample rate 1 and reduces the span stream to per-class stage cells.
func StagePointRun(policy string, offered, satMbps float64, cfg LoadCurveConfig) StagePoint {
	cfg.fill()
	point, tr := loadPointTraced(policy, offered, satMbps, cfg,
		obs.TraceConfig{Enabled: true, Sample: 1, Seed: cfg.Seed}, true)
	sp := StagePoint{LoadPoint: point, TraceDigest: tr.Digest()}
	spans := tr.Spans()
	sp.Spans = len(spans)

	var totals [qos.NumClasses][]sim.Time
	var stages [qos.NumClasses][obs.NumStages][]sim.Time
	for i := range spans {
		s := &spans[i]
		if s.Outcome != obs.OutcomeOK {
			continue
		}
		c := qos.Class(s.Class)
		totals[c] = append(totals[c], s.Total())
		for k, d := range s.Stages() {
			stages[c][k] = append(stages[c][k], d)
		}
	}
	for _, cell := range point.Classes {
		c := cell.Class
		sc := StageCell{Class: c, Spans: uint64(len(totals[c]))}
		sc.TotalP50 = qos.PercentileOf(append([]sim.Time(nil), totals[c]...), 50)
		sc.TotalP99 = qos.PercentileOf(append([]sim.Time(nil), totals[c]...), 99)
		for _, d := range totals[c] {
			sc.SumTotal += d
		}
		for k := 0; k < obs.NumStages; k++ {
			sc.P50[k] = qos.PercentileOf(append([]sim.Time(nil), stages[c][k]...), 50)
			sc.P99[k] = qos.PercentileOf(append([]sim.Time(nil), stages[c][k]...), 99)
			for _, d := range stages[c][k] {
				sc.SumStages[k] += d
			}
		}
		sp.Cells = append(sp.Cells, sc)
	}
	return sp
}

// FormatStageAttribution renders the E18 table: per (policy, offered),
// the voice and background classes' p99 decomposed by stage, with the
// mean stage share of total delivered latency alongside.
func FormatStageAttribution(r StageCurveResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stage attribution (E18): per-class latency decomposed by pipeline stage, saturation ~%.0f Mbps\n",
		r.SaturationMbps)
	b.WriteString("stages tile enqueue->completion exactly (queue+sched+xbar_up+core+drain == total); delivered packets only, sample rate 1\n")
	fmt.Fprintf(&b, "%-14s %8s %-12s %7s | %8s %8s | p99 by stage: %8s %8s %8s %8s %8s\n",
		"policy", "offered", "class", "spans", "p50 cyc", "p99 cyc",
		"queue", "sched", "xbar_up", "core", "drain")
	for _, p := range r.Points {
		for _, class := range []qos.Class{qos.Voice, qos.Background} {
			sc := p.StageCell(class)
			fmt.Fprintf(&b, "%-14s %7.2fx %-12s %7d | %8d %8d | %14s %8d %8d %8d %8d\n",
				p.Policy, p.Offered, sc.Class, sc.Spans,
				sc.TotalP50, sc.TotalP99,
				fmt.Sprintf("%8d", sc.P99[obs.StageQueue]), sc.P99[obs.StageSched],
				sc.P99[obs.StageXbarUp], sc.P99[obs.StageCore], sc.P99[obs.StageDrain])
		}
	}
	return b.String()
}

// ObsSmokeVerdict is the CI -obssmoke gate's result: the observability
// plane must be deterministic, free (bit-identical metrics with the
// tracer attached, within 5% wall-clock with it disabled), reconciled
// (stage sums tile the end-to-end totals; traced percentiles equal
// E13's), and the flight recorder must produce a postmortem from the
// one-crash drill.
type ObsSmokeVerdict struct {
	// Deterministic: two traced runs produced identical points and span
	// digests.
	Deterministic bool
	// Reconciled: the traced run's LoadPoint equals the untraced
	// LoadPointRun and every class's traced total percentiles equal the
	// E13 cell's.
	Reconciled bool
	// SumsTile: every class's SumTotal == Σ SumStages.
	SumsTile bool
	// Postmortems counts frozen flight-recorder dumps after the E16
	// one-crash drill (>= 1 required).
	Postmortems int
	// OverheadRatio is best-of-N wall-clock throughput with a disabled
	// tracer attached over tracer-absent (>= Limit required; the only
	// nondeterministic check).
	OverheadRatio float64
	Limit         float64
	Point         StagePoint
}

// Pass reports whether the gate held.
func (v ObsSmokeVerdict) Pass() bool {
	return v.Deterministic && v.Reconciled && v.SumsTile &&
		v.Postmortems >= 1 && v.OverheadRatio >= v.Limit
}

func (v ObsSmokeVerdict) String() string {
	verdict := "ok"
	if !v.Pass() {
		verdict = "FAIL"
	}
	flag := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	return fmt.Sprintf("obssmoke %s: determinism %s, reconcile-with-E13 %s, stage-sums %s, postmortems %d (need >= 1), tracing-off overhead ratio %.3f (limit %.2f)",
		verdict, flag(v.Deterministic), flag(v.Reconciled), flag(v.SumsTile),
		v.Postmortems, v.OverheadRatio, v.Limit)
}

// obsSmokeLoad is the gate's measurement point: qos-priority at 1.5x
// saturation (past the knee, so every stage is exercised: queueing,
// shedding, expiry and clean service all occur).
func obsSmokeLoad() (string, float64, float64, LoadCurveConfig) {
	cfg := LoadCurveConfig{BackgroundPackets: 120}
	cfg.fill()
	return "qos-priority", 1.5, SaturationMbps(cfg.Mix, cfg.SatPackets), cfg
}

// ObsSmoke runs the CI observability gate. Everything but the overhead
// ratio is exact: determinism and reconciliation compare structs and
// digests bit-for-bit; the wall-clock check takes the best of several
// short runs on each side to damp scheduler noise.
func ObsSmoke() ObsSmokeVerdict {
	policy, offered, sat, cfg := obsSmokeLoad()
	v := ObsSmokeVerdict{Limit: 0.95}

	// Determinism: the traced point must replay bit-identically (host
	// timestamps are excluded from the digest and absent from the point).
	a := StagePointRun(policy, offered, sat, cfg)
	b := StagePointRun(policy, offered, sat, cfg)
	v.Point = a
	v.Deterministic = a.TraceDigest == b.TraceDigest && reflect.DeepEqual(a, b)

	// Reconciliation: attaching the tracer must not perturb the E13
	// measurement, and the span-derived percentiles must equal the
	// shaper-derived ones exactly (same samples, same method).
	untraced := LoadPointRun(policy, offered, sat, cfg)
	v.Reconciled = reflect.DeepEqual(a.LoadPoint, untraced)
	v.SumsTile = len(a.Cells) > 0
	for _, sc := range a.Cells {
		cell := a.Cell(sc.Class)
		if sc.TotalP50 != cell.P50 || sc.TotalP99 != cell.P99 || sc.Spans != cell.Completed {
			v.Reconciled = false
		}
		var sum sim.Time
		for _, s := range sc.SumStages {
			sum += s
		}
		if sum != sc.SumTotal {
			v.SumsTile = false
		}
	}

	// Flight recorder: the E16 one-crash drill must freeze at least one
	// postmortem dump (the crash freeze on the victim shard; quarantine
	// adds another).
	drill := FaultConfig{
		Wire:        WireConfig{Shards: 4, Sessions: 64, WindowCycles: 4096, Windows: 24},
		Rows:        []FaultRow{{Crashes: 1, Churn: 8}},
		Policies:    []string{"qos-priority"},
		FaultWindow: 8,
	}
	drill.fill()
	drillSat := SaturationMbps(drill.Wire.Mix, drill.Wire.SatPackets) *
		float64(drill.Wire.Shards) * float64(drill.Wire.CoresPerShard) / 4
	faultPointRun("qos-priority", drill.Rows[0], drillSat,
		drill, func(srv *server.Server) {
			for _, d := range srv.Cluster().Postmortems() {
				if len(d.Records) > 0 {
					v.Postmortems++
				}
			}
		})

	// Overhead: a disabled-but-attached tracer must cost at most 5% of
	// wall-clock throughput vs no tracer at all. Best-of-N on each side.
	const rounds = 5
	best := func(attach bool) time.Duration {
		bestD := time.Duration(0)
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			loadPointTraced(policy, offered, sat, cfg, obs.TraceConfig{}, attach)
			if d := time.Since(t0); bestD == 0 || d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	absent, disabled := best(false), best(true)
	if disabled > 0 {
		v.OverheadRatio = float64(absent) / float64(disabled)
	}
	return v
}
