package harness

import (
	"reflect"
	"strings"
	"testing"

	"mccp/internal/obs"
)

// TestStageSpanStreamsIdentical: the raw span streams from two traced
// runs are bit-identical once the one wall-clock field (HostNs) is
// zeroed, and the digest agrees — the replayable-postmortem guarantee.
func TestStageSpanStreamsIdentical(t *testing.T) {
	cfg := LoadCurveConfig{BackgroundPackets: 80}
	cfg.fill()
	tc := obs.TraceConfig{Enabled: true, Sample: 1, Seed: cfg.Seed}
	run := func() ([]obs.Span, uint64) {
		_, tr := loadPointTraced("qos-priority", 1.0, 1400, cfg, tc, true)
		spans := append([]obs.Span(nil), tr.Spans()...)
		for i := range spans {
			spans[i].HostNs = 0
		}
		return spans, tr.Digest()
	}
	spansA, digA := run()
	spansB, digB := run()
	if digA != digB {
		t.Errorf("digest %#x != %#x", digA, digB)
	}
	if len(spansA) == 0 {
		t.Fatal("no spans recorded")
	}
	if !reflect.DeepEqual(spansA, spansB) {
		t.Fatal("span streams differ between identical runs")
	}
}

// TestStageSamplingSubsets: a sampled run records a strict subset of the
// full run's spans with identical per-span content (IDs number every
// arrival, so the subset aligns by ID).
func TestStageSamplingSubsets(t *testing.T) {
	cfg := LoadCurveConfig{BackgroundPackets: 80}
	cfg.fill()
	run := func(sample float64) []obs.Span {
		_, tr := loadPointTraced("qos-priority", 1.0, 1400, cfg,
			obs.TraceConfig{Enabled: true, Sample: sample, Seed: cfg.Seed}, true)
		spans := append([]obs.Span(nil), tr.Spans()...)
		for i := range spans {
			spans[i].HostNs = 0
		}
		return spans
	}
	full := run(1)
	byID := make(map[uint64]obs.Span, len(full))
	for _, sp := range full {
		byID[sp.ID] = sp
	}
	sampled := run(0.25)
	if len(sampled) == 0 || len(sampled) >= len(full) {
		t.Fatalf("sampled %d of %d spans at rate 0.25", len(sampled), len(full))
	}
	for _, sp := range sampled {
		want, ok := byID[sp.ID]
		if !ok {
			t.Errorf("sampled span %d absent from full run", sp.ID)
			continue
		}
		if sp != want {
			t.Errorf("span %d differs under sampling:\n%+v\n%+v", sp.ID, sp, want)
		}
	}
}

func TestFormatStageAttribution(t *testing.T) {
	cfg := StageCurveConfig{
		Policies: []string{"qos-priority"},
		Offered:  []float64{0.5},
		Load:     LoadCurveConfig{BackgroundPackets: 60},
	}
	text := FormatStageAttribution(StageAttribution(cfg))
	for _, needle := range []string{"Stage attribution (E18)", "qos-priority", "voice", "background", "xbar_up"} {
		if !strings.Contains(text, needle) {
			t.Errorf("table missing %q:\n%s", needle, text)
		}
	}
}

// TestObsSmoke runs the CI observability gate: determinism, E13
// reconciliation, stage tiling, a flight-recorder postmortem from the
// one-crash drill, and the tracing-off overhead bound.
func TestObsSmoke(t *testing.T) {
	v := ObsSmoke()
	t.Log(v.String())
	// The overhead ratio is the one wall-clock (nondeterministic) check;
	// under a heavily loaded test host it may dip, so the unit test
	// asserts the exact checks and logs the ratio rather than flaking.
	if !v.Deterministic || !v.Reconciled || !v.SumsTile || v.Postmortems < 1 {
		t.Fatalf("obs smoke gate failed: %s", v)
	}
}
