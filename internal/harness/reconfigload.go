package harness

import (
	"fmt"
	"strings"

	"mccp/internal/arrivals"
	"mccp/internal/cluster"
	"mccp/internal/fleet"
	"mccp/internal/qos"
	"mccp/internal/reconfig"
	"mccp/internal/sim"
)

// This file is experiment E15: the cost of agility under traffic. The
// paper's headline capability — swap AES for Whirlpool via an 89–97 kB
// partial bitstream while the other cores keep serving — is measured
// here at fleet scope: a rolling per-shard swap drains each shard
// voice-first, rewrites its reconfigurable core at one of the paper's
// bitstream-source speeds, and re-admits it, while the remaining shards
// carry the full open-loop arrival stream. Each swap's bitstream window
// doubles as a measurement window on the serving shards, so the table
// answers "what happens to voice during the 63–416 ms the fleet is one
// shard short?" at each source speed and under both dispatch policies.

// ReconfigLoadConfig parameterizes ReconfigUnderLoad.
type ReconfigLoadConfig struct {
	// Policies are the shard dispatch policies swept (default first-idle
	// then qos-priority, the E13 contrast).
	Policies []string
	// Sources are the bitstream sources swept (default the paper's
	// CompactFlash and staging RAM plus the native-ICAP fast source).
	Sources []reconfig.Source
	// Target is the engine swapped in on core 0 of every shard. The zero
	// value selects Whirlpool (the paper's §VII.B demonstration: the
	// fleet gains hash capability, paying one AES core per shard); an
	// explicit AES target is not distinguishable from unset and is
	// normalized to Whirlpool.
	Target reconfig.Engine
	// Shards and CoresPerShard size the cluster (defaults 4 and 4).
	Shards, CoresPerShard int
	// Offered is the cluster-total offered load as a fraction of the
	// all-shards-serving saturation capacity (default 0.9 — healthy
	// with every shard up, ~1.2x per-shard saturation while one of four
	// shards is draining).
	Offered float64
	// TimeScale compresses the bitstream windows: each source is sped up
	// by up to this factor (default 64) so a CompactFlash swap (~72M
	// cycles at full scale) stays simulable, but never so far that a
	// window drops below MinWindowCycles. Reported true durations are
	// always at full scale.
	TimeScale float64
	// MinWindowCycles floors the compressed window (default 50000) so
	// fast sources still yield a statistically meaningful measurement.
	MinWindowCycles sim.Time
	// Process names the arrival process (default poisson); Mix the class
	// mix (default LoadMix).
	Process string
	Mix     []arrivals.ClassProfile
	// Capacity and QueueDepth size each shard's shaper (defaults 32 and
	// 64 — wider than the E13 device-scope defaults so the class-blind
	// in-flight gate does not dominate voice latency and the dispatch
	// policies can differentiate, the same contrast E13 shows past the
	// knee: qos-priority holds voice p99 lower and flatter while
	// first-idle's climbs).
	Capacity, QueueDepth int
	Seed                 uint64
	// SatPackets sizes the capacity calibration (default 8).
	SatPackets int
}

func (c *ReconfigLoadConfig) fill() {
	if len(c.Policies) == 0 {
		c.Policies = []string{"first-idle", "qos-priority"}
	}
	if len(c.Sources) == 0 {
		c.Sources = reconfig.Sources()
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.CoresPerShard <= 0 {
		c.CoresPerShard = 4
	}
	c.Target = reconfig.EngineWhirlpool
	if c.Offered <= 0 {
		c.Offered = 0.9
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 64
	}
	if c.MinWindowCycles <= 0 {
		c.MinWindowCycles = 50000
	}
	if c.Process == "" {
		c.Process = arrivals.ProcPoisson
	}
	if len(c.Mix) == 0 {
		c.Mix = LoadMix
	}
	if c.Capacity <= 0 {
		c.Capacity = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Seed == 0 {
		c.Seed = 31
	}
	if c.SatPackets <= 0 {
		c.SatPackets = 8
	}
}

// effectiveScale compresses src by at most cfg.TimeScale while keeping
// the swap window at or above the floor.
func (c ReconfigLoadConfig) effectiveScale(src reconfig.Source) float64 {
	window := float64(fleet.SwapWindow(c.Target, src))
	scale := c.TimeScale
	if floor := window / float64(c.MinWindowCycles); floor < scale {
		scale = floor
	}
	if scale < 1 {
		scale = 1
	}
	return scale
}

// ReconfigClassCell aggregates one class across every swap leg's
// measurement window (the traffic served while a shard was down).
type ReconfigClassCell struct {
	Class                                             qos.Class
	Submitted, Completed, Shed, Expired, Aged, Misses uint64
	// LossFrac is (Submitted-Completed)/Submitted across the legs.
	LossFrac float64
	// P50 and P99 are latency percentiles over the merged samples of
	// every leg — the swap phase as one distribution, not the worst
	// single window (a fully saturated leg serializes dispatch and
	// erases the policy contrast; merging keeps it visible).
	P50, P99 sim.Time

	samples []sim.Time
}

// ReconfigRun is one (policy, source) measurement.
type ReconfigRun struct {
	Policy string
	Source string
	// TrueWindowMillis is the full-scale bitstream window (stream-in plus
	// controller image rewrite) at the modeled clock — the paper's Table
	// IV timescale. SwapCycles is the compressed virtual duration each
	// leg actually simulated, and Scale the compression used.
	TrueWindowMillis float64
	SwapCycles       sim.Time
	Scale            float64
	// Legs counts per-shard swaps; Drained/Readmitted total the sessions
	// re-homed around them (voice-first order).
	Legs, Drained, Readmitted int
	// Baseline fields measure an equal window with every shard serving,
	// before any swap; During fields cover the swap legs.
	BaselineVoiceP99  sim.Time
	BaselineDelivered float64
	DuringDelivered   float64
	Classes           []ReconfigClassCell
	// Digest folds every measurement window's arrival digest (baseline,
	// each leg, recovery) — the determinism witness.
	Digest uint64
	// Errors counts completions with unexpected verdicts (always 0 in a
	// healthy run).
	Errors int
}

// Cell returns the run's cell for a class (zero value if absent).
func (r ReconfigRun) Cell(c qos.Class) ReconfigClassCell {
	for _, cell := range r.Classes {
		if cell.Class == c {
			return cell
		}
	}
	return ReconfigClassCell{Class: c}
}

// ReconfigLoadResult is the full E15 sweep.
type ReconfigLoadResult struct {
	// SaturationMbps is the calibrated per-shard capacity; OfferedMbps
	// the cluster-total offered load (Offered x Shards x saturation).
	SaturationMbps float64
	OfferedMbps    float64
	Offered        float64
	Shards         int
	Target         string
	Runs           []ReconfigRun
}

// ReconfigUnderLoad runs E15: for each policy and bitstream source, a
// rolling Whirlpool swap across every shard under a sustained open-loop
// arrival stream, measuring the traffic served during each bitstream
// window. Deterministic: everything runs in virtual time on the
// splittable PRNG.
func ReconfigUnderLoad(cfg ReconfigLoadConfig) ReconfigLoadResult {
	cfg.fill()
	sat := SaturationMbps(cfg.Mix, cfg.SatPackets) * float64(cfg.CoresPerShard) / 4
	res := ReconfigLoadResult{
		SaturationMbps: sat,
		OfferedMbps:    cfg.Offered * sat * float64(cfg.Shards),
		Offered:        cfg.Offered,
		Shards:         cfg.Shards,
		Target:         cfg.Target.String(),
	}
	for _, pol := range cfg.Policies {
		for _, src := range cfg.Sources {
			res.Runs = append(res.Runs, reconfigRun(pol, src, sat, cfg))
		}
	}
	return res
}

func reconfigRun(policy string, src reconfig.Source, satPerShard float64, cfg ReconfigLoadConfig) ReconfigRun {
	cl, err := cluster.New(cluster.Config{
		Shards:        cfg.Shards,
		CoresPerShard: cfg.CoresPerShard,
		Router:        cluster.RouterLeastLoaded,
		Policy:        policy,
		QueueRequests: true,
		Seed:          cfg.Seed,
		Shape:         true,
		Shaper: qos.Config{
			Capacity:   cfg.Capacity,
			QueueDepth: cfg.QueueDepth,
		},
	})
	if err != nil {
		panic(err) // experiment drivers pass literal configurations
	}
	defer cl.Close()

	scale := cfg.effectiveScale(src)
	scaled := src.Scaled(scale)
	run := ReconfigRun{
		Policy:           policy,
		Source:           src.Name,
		TrueWindowMillis: float64(fleet.SwapWindow(cfg.Target, src)) / sim.DefaultFreqHz * 1e3,
		Scale:            scale,
		Digest:           arrivals.DigestInit,
	}

	runner, err := cluster.NewOpenLoopRunner(cl, cluster.OpenLoopRunnerConfig{
		Process:     cfg.Process,
		Profiles:    cfg.Mix,
		OfferedMbps: cfg.Offered * satPerShard * float64(cfg.Shards),
		Seed:        cfg.Seed,
	})
	if err != nil {
		panic(err)
	}
	f := fleet.New(cl)
	window := fleet.SwapWindow(cfg.Target, scaled)
	run.SwapCycles = window

	fold := func(w cluster.OpenLoopWindow) {
		run.Digest = (run.Digest ^ w.Digest) * 0x100000001b3
		run.Errors += w.Errors
	}

	// Baseline: an equal window with every shard serving.
	base, err := runner.RunWindow(window)
	if err != nil {
		panic(err)
	}
	fold(base)
	run.BaselineVoiceP99 = baseCell(base, qos.Voice).P99
	run.BaselineDelivered = base.DeliveredMbps()

	// The rolling swap: each leg's during hook serves one bitstream
	// window on the remaining shards.
	acc := map[qos.Class]*ReconfigClassCell{}
	legs := 0
	reports, err := f.RollingSwap(0, cfg.Target, scaled,
		func(shard int, legWindow sim.Time) error {
			w, err := runner.RunWindow(legWindow)
			if err != nil {
				return err
			}
			fold(w)
			legs++
			run.DuringDelivered += w.DeliveredMbps()
			for _, c := range w.Classes {
				cell := acc[c.Class]
				if cell == nil {
					cell = &ReconfigClassCell{Class: c.Class}
					acc[c.Class] = cell
				}
				cell.Submitted += c.Submitted
				cell.Completed += c.Completed
				cell.Shed += c.Shed
				cell.Expired += c.Expired
				cell.Aged += c.Aged
				cell.Misses += c.Misses
				cell.samples = append(cell.samples, c.Samples...)
			}
			return nil
		})
	if err != nil {
		panic(err)
	}
	for _, rep := range reports {
		run.Legs++
		run.Drained += rep.Drained
		run.Readmitted += rep.Readmitted
	}
	if legs > 0 {
		run.DuringDelivered /= float64(legs)
	}
	// Recovery window: every shard back, digests must keep folding so a
	// post-swap divergence cannot hide.
	rec, err := runner.RunWindow(window)
	if err != nil {
		panic(err)
	}
	fold(rec)

	for _, class := range qos.Classes() {
		cell := acc[class]
		if cell == nil {
			continue
		}
		if cell.Submitted > 0 {
			cell.LossFrac = float64(cell.Submitted-cell.Completed) / float64(cell.Submitted)
		}
		cell.P50 = qos.PercentileOf(cell.samples, 50)
		cell.P99 = qos.PercentileOf(cell.samples, 99)
		cell.samples = nil
		run.Classes = append(run.Classes, *cell)
	}
	return run
}

// baseCell looks up a class in a window report.
func baseCell(w cluster.OpenLoopWindow, class qos.Class) cluster.OpenLoopClass {
	for _, c := range w.Classes {
		if c.Class == class {
			return c
		}
	}
	return cluster.OpenLoopClass{Class: class}
}

// FormatReconfigUnderLoad renders the E15 sweep.
func FormatReconfigUnderLoad(r ReconfigLoadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rolling reconfiguration under load (E15): %s swap across %d shards at %.2fx saturation (%.0f Mbps offered)\n",
		r.Target, r.Shards, r.Offered, r.OfferedMbps)
	fmt.Fprintf(&b, "each bitstream window is measured on the serving shards; true window at the paper's source speeds\n")
	fmt.Fprintf(&b, "%-14s %-14s %9s | %9s %9s | %8s %10s %8s | %8s %10s\n",
		"policy", "source", "window ms", "base Mbps", "del Mbps",
		"v loss%", "v p99 cyc", "v miss", "bg loss%", "bg p99 cyc")
	for _, run := range r.Runs {
		v, bg := run.Cell(qos.Voice), run.Cell(qos.Background)
		fmt.Fprintf(&b, "%-14s %-14s %9.1f | %9.0f %9.0f | %7.2f%% %10d %8d | %7.2f%% %10d\n",
			run.Policy, run.Source, run.TrueWindowMillis,
			run.BaselineDelivered, run.DuringDelivered,
			100*v.LossFrac, v.P99, v.Misses, 100*bg.LossFrac, bg.P99)
	}
	return b.String()
}

// ReconfigSmokeVerdict is the CI rolling-swap gate's result.
type ReconfigSmokeVerdict struct {
	// VoiceLoss is the voice loss fraction during the bitstream windows
	// under qos-priority; LossLimit the ceiling.
	VoiceLoss float64
	LossLimit float64
	// VoiceP99 is the worst during-swap voice p99; P99Limit the bound
	// derived from the baseline window (inflation factor + slack).
	VoiceP99    sim.Time
	BaselineP99 sim.Time
	P99Limit    sim.Time
	Run         ReconfigRun
}

// Pass reports whether the gate held.
func (v ReconfigSmokeVerdict) Pass() bool {
	return v.VoiceLoss <= v.LossLimit && v.VoiceP99 <= v.P99Limit
}

func (v ReconfigSmokeVerdict) String() string {
	verdict := "ok"
	if !v.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("reconfigsmoke %s: voice loss %.2f%% (limit %.0f%%), p99 %d cycles during swap (baseline %d, limit %d) under qos-priority",
		verdict, 100*v.VoiceLoss, 100*v.LossLimit, v.VoiceP99, v.BaselineP99, v.P99Limit)
}

// ReconfigSmoke runs the CI mini rolling-swap gate: a two-shard cluster
// under qos-priority swaps each shard's core from staging RAM while the
// other carries the stream at ~1.8x its own saturation — voice must
// lose at most 1% and its during-swap p99 must stay within 3x the
// all-shards-serving baseline plus scheduling slack. Deliberately small
// so the gate costs seconds.
func ReconfigSmoke() ReconfigSmokeVerdict {
	res := ReconfigUnderLoad(ReconfigLoadConfig{
		Policies:  []string{"qos-priority"},
		Sources:   []reconfig.Source{reconfig.StagingRAM},
		Shards:    2,
		TimeScale: 256,
	})
	run := res.Runs[0]
	v := ReconfigSmokeVerdict{
		LossLimit:   0.01,
		VoiceLoss:   run.Cell(qos.Voice).LossFrac,
		VoiceP99:    run.Cell(qos.Voice).P99,
		BaselineP99: run.BaselineVoiceP99,
		Run:         run,
	}
	v.P99Limit = 3*run.BaselineVoiceP99 + 8000
	return v
}
