package trafficgen

import (
	"testing"

	"mccp/internal/cryptocore"
)

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(7, DefaultMix)
	b := NewGenerator(7, DefaultMix)
	for i := 0; i < 20; i++ {
		pa := a.Next(i%len(DefaultMix), i)
		pb := b.Next(i%len(DefaultMix), i)
		if string(pa.Payload) != string(pb.Payload) || string(pa.Nonce) != string(pb.Nonce) {
			t.Fatalf("generator not deterministic at packet %d", i)
		}
	}
}

func TestGeneratorRespectsProfiles(t *testing.T) {
	g := NewGenerator(3, DefaultMix)
	for i, s := range DefaultMix {
		for k := 0; k < 50; k++ {
			p := g.Next(i, 1)
			if len(p.Payload) < s.MinBytes || len(p.Payload) > s.MaxBytes {
				t.Fatalf("%s: payload %d outside [%d,%d]", s.Name, len(p.Payload), s.MinBytes, s.MaxBytes)
			}
			wantNonce := 12
			if s.Family == cryptocore.FamilyCCM {
				wantNonce = 13
			}
			if len(p.Nonce) != wantNonce {
				t.Fatalf("%s: nonce %d bytes", s.Name, len(p.Nonce))
			}
		}
	}
}

// TestRunMixedCompletesAllTraffic is the integration smoke test: a mixed
// four-standard workload completes on every policy without loss.
func TestRunMixedCompletesAllTraffic(t *testing.T) {
	for _, pol := range []string{"first-idle", "round-robin", "key-affinity"} {
		r := RunMixed(MixedConfig{Policy: pol, Packets: 40, Channels: 4, Seed: 2, QueueDepth: true})
		if r.ThroughputMbps <= 0 || r.Bytes == 0 {
			t.Errorf("%s: empty run: %+v", pol, r)
		}
		if r.Rejected != 0 {
			t.Errorf("%s: %d rejections with queueing enabled", pol, r.Rejected)
		}
	}
}

// TestKeyAffinityBeatsFirstIdle pins the §VIII scheduling result: with more
// channels than key-cache slots per core, affinity-aware placement cuts Key
// Scheduler expansions well below the paper's first-idle policy.
func TestKeyAffinityBeatsFirstIdle(t *testing.T) {
	cfg := MixedConfig{Packets: 80, Channels: 6, Seed: 1, QueueDepth: true}

	cfg.Policy = "first-idle"
	fi := RunMixed(cfg)
	cfg.Policy = "key-affinity"
	ka := RunMixed(cfg)
	cfg.Policy = "round-robin"
	rr := RunMixed(cfg)

	t.Logf("expansions: first-idle=%d round-robin=%d key-affinity=%d",
		fi.KeyExpansions, rr.KeyExpansions, ka.KeyExpansions)
	if ka.KeyExpansions*2 >= fi.KeyExpansions {
		t.Errorf("key-affinity (%d expansions) should at least halve first-idle (%d)",
			ka.KeyExpansions, fi.KeyExpansions)
	}
	if ka.KeyExpansions > rr.KeyExpansions {
		t.Errorf("key-affinity (%d) should not exceed round-robin (%d)",
			ka.KeyExpansions, rr.KeyExpansions)
	}
}

// TestErrorFlagUnderOverload reproduces the paper's no-queue behaviour on a
// mixed workload: without the QoS extension, overload draws error flags.
func TestErrorFlagUnderOverload(t *testing.T) {
	r := RunMixed(MixedConfig{Policy: "first-idle", Packets: 40, Channels: 6,
		Seed: 4, QueueDepth: false, Window: 8})
	if r.Rejected == 0 {
		t.Error("expected rejections when offered load exceeds 4 cores without queueing")
	}
}
