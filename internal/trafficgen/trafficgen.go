// Package trafficgen generates multi-channel, multi-standard packet
// workloads for the MCCP: the traffic shape the paper's introduction
// motivates (several concurrent communication standards, each with its own
// cipher suite, packet-size profile and rate). The generator is fully
// deterministic so experiments are reproducible.
package trafficgen

import (
	"fmt"
	"math/rand"
	"strings"

	"mccp/internal/bufpool"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/qos"
	"mccp/internal/radio"
	"mccp/internal/scheduler"
	"mccp/internal/sim"
)

// Standard is one waveform profile.
type Standard struct {
	Name   string
	Family cryptocore.Family
	KeyLen int
	TagLen int
	Split  bool
	// MinBytes and MaxBytes bound the uniform packet-size distribution.
	MinBytes, MaxBytes int
	// Priority feeds the QoS extension (higher = more urgent).
	Priority int
}

// Profiles modeled on the standards the paper names (UMTS, WiFi, WiMax) —
// the cipher-suite and size choices follow the standards' security
// amendments (802.11i CCMP, 802.16e AES-CCM, and a GCM-protected wideband
// link), not any proprietary trace. Priorities follow the qos package's
// class numbering (voice 3, video 2, data 1, background 0), so a
// standard's traffic lands in the matching QoS class end-to-end.
var (
	// VoiceUMTS: small, frequent, latency-sensitive voice frames.
	VoiceUMTS = Standard{Name: "umts-voice", Family: cryptocore.FamilyCCM, KeyLen: 16,
		TagLen: 8, MinBytes: 64, MaxBytes: 256, Priority: 3}
	// WiFiCCMP: 802.11i CCMP data frames.
	WiFiCCMP = Standard{Name: "wifi-ccmp", Family: cryptocore.FamilyCCM, KeyLen: 16,
		TagLen: 8, MinBytes: 256, MaxBytes: 1500, Priority: 1}
	// WiMaxGCM: wideband GCM bulk data.
	WiMaxGCM = Standard{Name: "wimax-gcm", Family: cryptocore.FamilyGCM, KeyLen: 16,
		TagLen: 16, MinBytes: 512, MaxBytes: 2048, Priority: 0}
	// VideoGCM256: high-assurance video with 256-bit keys.
	VideoGCM256 = Standard{Name: "video-gcm256", Family: cryptocore.FamilyGCM, KeyLen: 32,
		TagLen: 16, MinBytes: 1024, MaxBytes: 2048, Priority: 2}
	// BackgroundBulk: best-effort bulk transfer at maximum packet size —
	// the traffic the QoS experiments overload the device with.
	BackgroundBulk = Standard{Name: "background-bulk", Family: cryptocore.FamilyGCM, KeyLen: 16,
		TagLen: 16, MinBytes: 1500, MaxBytes: 2048, Priority: 0}
)

// DefaultMix is a four-standard mix exercising every suite dimension.
var DefaultMix = []Standard{VoiceUMTS, WiFiCCMP, WiMaxGCM, VideoGCM256}

// QoSMix covers all four QoS classes exactly once: voice, video, data and
// background traffic in one mixed-priority workload.
var QoSMix = []Standard{VoiceUMTS, VideoGCM256, WiFiCCMP, BackgroundBulk}

// catalog lists every selectable profile, DefaultMix first.
var catalog = []Standard{VoiceUMTS, WiFiCCMP, WiMaxGCM, VideoGCM256, BackgroundBulk}

// StandardNames lists the selectable profile names.
func StandardNames() []string {
	names := make([]string, len(catalog))
	for i, s := range catalog {
		names[i] = s.Name
	}
	return names
}

// StandardsByName resolves profile names to Standards, for workload-mix
// CLI flags.
func StandardsByName(names []string) ([]Standard, error) {
	out := make([]Standard, 0, len(names))
	for _, n := range names {
		found := false
		for _, s := range catalog {
			if s.Name == n {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("trafficgen: unknown standard %q (have %s)",
				n, strings.Join(StandardNames(), ", "))
		}
	}
	return out, nil
}

// SuiteFor converts a standard profile to the device suite it opens.
func SuiteFor(s Standard) core.Suite {
	return core.Suite{Family: s.Family, TagLen: s.TagLen, SplitCCM: s.Split, Priority: s.Priority}
}

// Class returns the standard's QoS class (derived from its priority tag).
func (s Standard) Class() qos.Class { return qos.ClassForPriority(s.Priority) }

// Packet is one generated packet. Its buffers come from bufpool: release
// them with ReleasePacket once the packet's operation has completed (its
// callback ran), or keep them and let the GC collect them. Buffer reuse
// never changes packet contents — the generator fully overwrites every
// buffer it hands out, in the same RNG draw order as freshly allocated
// ones.
type Packet struct {
	Channel int
	Nonce   []byte
	AAD     []byte
	Payload []byte
}

// ReleasePacket recycles a packet's buffers. The packet must no longer be
// referenced by an in-flight operation.
func ReleasePacket(p Packet) {
	bufpool.PutBytes(p.Nonce)
	bufpool.PutBytes(p.AAD)
	bufpool.PutBytes(p.Payload)
}

// Generator produces packets for a set of opened channels.
type Generator struct {
	rng  *rand.Rand
	stds []Standard
	seq  uint64
}

// NewGenerator returns a deterministic generator over the given standards.
func NewGenerator(seed int64, stds []Standard) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), stds: stds}
}

// Next produces a packet for standard index i on channel ch.
func (g *Generator) Next(i, ch int) Packet {
	s := g.stds[i]
	g.seq++
	n := s.MinBytes
	if s.MaxBytes > s.MinBytes {
		n += g.rng.Intn(s.MaxBytes - s.MinBytes + 1)
	}
	nonceLen := 12
	if s.Family == cryptocore.FamilyCCM {
		nonceLen = 13
	}
	nonce := bufpool.BytesN(nonceLen)
	g.rng.Read(nonce)
	// Keep the counter portion clear of 16-bit wrap.
	nonce[nonceLen-1] = byte(g.seq)
	payload := bufpool.BytesN(n)
	g.rng.Read(payload)
	aad := bufpool.BytesN(8 + g.rng.Intn(16))
	g.rng.Read(aad)
	return Packet{Channel: ch, Nonce: nonce, AAD: aad, Payload: payload}
}

// MixedConfig parameterizes RunMixed.
type MixedConfig struct {
	Policy     string // a scheduler policy name ("first-idle" by default)
	Packets    int    // total packets to push through
	Channels   int    // number of channels (cycled over the mix)
	Seed       int64
	QueueDepth bool // enable the QoS queueing extension
	Cores      int  // 0 = 4
	// Mix selects the standards cycled over (default DefaultMix; QoSMix
	// covers all four QoS classes).
	Mix []Standard
	// Window is the number of packets kept in flight (0 = 2). Values below
	// the core count leave idle cores at each dispatch, which is where
	// placement policies can differ; at saturation every policy degenerates
	// to "take the one just-freed core".
	Window int
}

// RunResult summarizes a mixed-traffic run.
type RunResult struct {
	ThroughputMbps float64
	MeanLatency    float64
	MaxLatency     sim.Time
	KeyExpansions  uint64
	Rejected       uint64
	Bytes          int
}

// RunMixed drives a mixed multi-channel workload through a full device and
// reports aggregate throughput, latency and key-scheduler pressure — the
// experiment behind the §VIII scheduling-policy discussion.
func RunMixed(cfg MixedConfig) RunResult {
	pol, err := scheduler.ByName(cfg.Policy)
	if err != nil {
		// Callers validate user input; an unknown name here is a
		// programming error in an experiment driver.
		panic(err)
	}
	eng := sim.NewEngine()
	dev := core.New(eng, core.Config{Cores: cfg.Cores, Policy: pol, QueueRequests: cfg.QueueDepth})
	cc := radio.NewCommController(dev)
	mc := radio.NewMainController(dev, uint64(cfg.Seed)+13)
	eng.Run()

	if len(cfg.Mix) == 0 {
		cfg.Mix = DefaultMix
	}
	if cfg.Channels <= 0 {
		cfg.Channels = len(cfg.Mix)
	}
	gen := NewGenerator(cfg.Seed, cfg.Mix)
	type chinfo struct {
		id  int
		std int
	}
	var chans []chinfo
	for i := 0; i < cfg.Channels; i++ {
		stdIdx := i % len(cfg.Mix)
		s := cfg.Mix[stdIdx]
		keyID, _, err := mc.ProvisionKey(s.KeyLen)
		if err != nil {
			panic(err)
		}
		suite := SuiteFor(s)
		cc.OpenChannel(suite, keyID, func(c int, e error) {
			if e != nil {
				panic(e)
			}
			chans = append(chans, chinfo{id: c, std: stdIdx})
		})
		eng.Run()
	}

	res := RunResult{}
	var latSum sim.Time
	completed := 0
	launched := 0
	inFlight := 0
	window := cfg.Window
	if window <= 0 {
		window = 2
	}

	var pump func()
	pump = func() {
		for inFlight < window && launched < cfg.Packets {
			ci := chans[launched%len(chans)]
			pkt := gen.Next(ci.std, ci.id)
			launched++
			inFlight++
			sent := eng.Now()
			res.Bytes += len(pkt.Payload)
			cc.Encrypt(ci.id, pkt.Nonce, pkt.AAD, pkt.Payload, func(out []byte, err error) {
				inFlight--
				ReleasePacket(pkt)
				bufpool.PutBytes(out)
				if err == core.ErrNoResources {
					res.Rejected++
					pump()
					return
				}
				if err != nil {
					panic(err)
				}
				lat := eng.Now() - sent
				latSum += lat
				if lat > res.MaxLatency {
					res.MaxLatency = lat
				}
				completed++
				pump()
			})
		}
	}
	start := eng.Now()
	pump()
	eng.Run()
	cycles := eng.Now() - start
	if completed > 0 {
		res.MeanLatency = float64(latSum) / float64(completed)
	}
	res.ThroughputMbps = eng.ThroughputMbps(res.Bytes*8, cycles)
	res.KeyExpansions = dev.KeySched.Expansions
	return res
}
