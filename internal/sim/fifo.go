package sim

import "fmt"

// WordFIFO models a hardware FIFO of 32-bit words, as used between the
// MCCP crossbar and each Cryptographic Core (512 x 32 bits in the paper,
// i.e. one 2048-byte packet). Reads and writes are callback-based: a blocked
// operation parks until the FIFO state changes.
//
// Besides the word-at-a-time reference operations, the FIFO supports burst
// transfers that move a whole crossbar segment in one event while keeping
// cycle-exact semantics: BulkPush records a per-word ready time (the cycle
// the word would have arrived at one word per cycle), and BulkPop records
// per-slot cooling times (the cycle each slot would have been freed). Every
// observer — CanPush/CanPop, TryPush/TryPop, the When* wait operations —
// accounts for ready and cooling times against the current clock, so the
// FIFO's observable state at every virtual instant is identical to the
// word-paced reference transfer. The differential determinism tests run
// full workloads both ways to enforce this.
type WordFIFO struct {
	eng  *Engine
	buf  []uint32
	head int
	n    int
	// readyAt parallels buf: the cycle at which the word becomes visible
	// to poppers. Word-at-a-time pushes use the push cycle; bulk pushes
	// spread the burst over the reference schedule. Entries are
	// nondecreasing in queue order (single-producer FIFOs; enforced).
	readyAt []Time
	// cooling holds future slot-release times from bulk pops, ascending.
	// A slot still cooling counts as occupied; entries are pruned lazily
	// against the clock.
	cooling  []Time
	notEmpty *Waiters
	notFull  *Waiters
	// Pushed and Popped count total words moved through the FIFO; they feed
	// utilization metrics.
	Pushed uint64
	Popped uint64
}

// NewWordFIFO returns a FIFO with the given capacity in 32-bit words.
func NewWordFIFO(eng *Engine, capacity int) *WordFIFO {
	if capacity <= 0 {
		panic("sim: FIFO capacity must be positive")
	}
	return &WordFIFO{
		eng:      eng,
		buf:      make([]uint32, capacity),
		readyAt:  make([]Time, capacity),
		notEmpty: NewWaiters(eng),
		notFull:  NewWaiters(eng),
	}
}

// Cap returns the FIFO capacity in words.
func (f *WordFIFO) Cap() int { return len(f.buf) }

// Len returns the number of words currently stored (including words of an
// in-flight burst that are not yet poppable).
func (f *WordFIFO) Len() int { return f.n }

// pruneCooling drops slot-release times that have elapsed.
func (f *WordFIFO) pruneCooling() {
	now := f.eng.Now()
	i := 0
	for i < len(f.cooling) && f.cooling[i] <= now {
		i++
	}
	if i > 0 {
		f.cooling = append(f.cooling[:0], f.cooling[i:]...)
	}
}

// occupied counts slots unavailable to pushers: stored words plus slots
// still cooling after a bulk pop.
func (f *WordFIFO) occupied() int {
	f.pruneCooling()
	return f.n + len(f.cooling)
}

// CanPush reports whether at least k words of space are free.
func (f *WordFIFO) CanPush(k int) bool { return f.occupied()+k <= len(f.buf) }

// CanPop reports whether at least k words are available (present and past
// their ready time).
func (f *WordFIFO) CanPop(k int) bool {
	if k <= 0 {
		return true
	}
	return f.n >= k && f.readyAt[(f.head+k-1)%len(f.buf)] <= f.eng.Now()
}

// CanPopSchedule reports whether k words could be drained on the reference
// word-per-cycle schedule: word i present now and ready by start+i*stride.
// The crossbar's burst read path uses it as its fast-path guard.
func (f *WordFIFO) CanPopSchedule(k int, start, stride Time) bool {
	if f.n < k {
		return false
	}
	for i := 0; i < k; i++ {
		if f.readyAt[(f.head+i)%len(f.buf)] > start+Time(i)*stride {
			return false
		}
	}
	return true
}

// push appends one word with the given ready time.
func (f *WordFIFO) push(w uint32, ready Time) {
	i := (f.head + f.n) % len(f.buf)
	if f.n > 0 {
		last := (f.head + f.n - 1) % len(f.buf)
		if f.readyAt[last] > ready {
			panic(fmt.Sprintf("sim: FIFO push ready at %d behind in-flight burst word at %d",
				ready, f.readyAt[last]))
		}
	}
	f.buf[i] = w
	f.readyAt[i] = ready
	f.n++
	f.Pushed++
}

// TryPush appends w if space is available and reports success.
func (f *WordFIFO) TryPush(w uint32) bool {
	if f.occupied() == len(f.buf) {
		return false
	}
	f.push(w, f.eng.Now())
	f.notEmpty.Release()
	return true
}

// BulkPush appends a whole burst in one call: word i becomes poppable at
// start+i*stride, exactly when a word-per-cycle reference transfer would
// have delivered it. The caller must have checked CanPush(len(words)).
func (f *WordFIFO) BulkPush(words []uint32, start, stride Time) {
	if f.occupied()+len(words) > len(f.buf) {
		panic("sim: BulkPush without space (check CanPush first)")
	}
	for i, w := range words {
		f.push(w, start+Time(i)*stride)
	}
	f.notEmpty.Release()
}

// TryPop removes and returns the oldest word.
func (f *WordFIFO) TryPop() (uint32, bool) {
	if f.n == 0 || f.readyAt[f.head] > f.eng.Now() {
		return 0, false
	}
	w := f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	f.Popped++
	f.notFull.Release()
	return w, true
}

// BulkPop removes the oldest k words in one call, appending them to dst.
// Slot i is accounted occupied until start+i*stride — the cycle a
// word-per-cycle reference drain would have freed it — via the cooling
// list. The caller must have checked CanPopSchedule(k, start, stride).
func (f *WordFIFO) BulkPop(dst []uint32, k int, start, stride Time) []uint32 {
	if !f.CanPopSchedule(k, start, stride) {
		panic("sim: BulkPop off schedule (check CanPopSchedule first)")
	}
	now := f.eng.Now()
	for i := 0; i < k; i++ {
		dst = append(dst, f.buf[f.head])
		f.head = (f.head + 1) % len(f.buf)
		f.n--
		if t := start + Time(i)*stride; t > now {
			// Grants are serialized, so successive bursts append ascending
			// times and the cooling list stays sorted.
			f.cooling = append(f.cooling, t)
		}
	}
	f.Popped += uint64(k)
	f.notFull.Release()
	return dst
}

// PushWord delivers one word callback-style: then runs once the word has
// been accepted, parking through the FIFO's backpressure if it is full.
// This is the reference word-per-cycle upload handshake (the crossbar's
// word-paced path and the core's upload port both use it).
func (f *WordFIFO) PushWord(w uint32, then func()) {
	if f.TryPush(w) {
		f.eng.After(0, then)
		return
	}
	f.WhenPushable(1, func() { f.PushWord(w, then) })
}

// PopWord removes the oldest word callback-style, parking until one is
// available. The reference download handshake, mirroring PushWord.
func (f *WordFIFO) PopWord(then func(uint32)) {
	if w, ok := f.TryPop(); ok {
		f.eng.After(0, func() { then(w) })
		return
	}
	f.WhenPoppable(1, func() { f.PopWord(then) })
}

// WhenPushable parks fn until at least k words of space may be free.
// fn must re-check CanPush (spurious wakeups are possible). When the
// shortfall is only cooling slots — space that frees by the passage of
// time — fn is scheduled at the exact cycle the space appears instead of
// parking, preserving the reference wakeup time without per-word events.
func (f *WordFIFO) WhenPushable(k int, fn func()) {
	if f.CanPush(k) {
		f.eng.After(0, fn)
		return
	}
	if need := f.n + len(f.cooling) + k - len(f.buf); need <= len(f.cooling) {
		f.eng.At(f.cooling[need-1], fn)
		return
	}
	f.notFull.Park(fn)
}

// WhenPoppable parks fn until at least k words may be available.
// fn must re-check CanPop. Words already present but still in-flight from a
// burst wake fn at their exact ready time.
func (f *WordFIFO) WhenPoppable(k int, fn func()) {
	if f.CanPop(k) {
		f.eng.After(0, fn)
		return
	}
	if f.n >= k {
		f.eng.At(f.readyAt[(f.head+k-1)%len(f.buf)], fn)
		return
	}
	f.notEmpty.Park(fn)
}

// Reset discards all contents, modeling the output-FIFO re-initialization
// the paper performs when a packet fails authentication (protects the
// master processor from reading unauthenticated plaintext).
func (f *WordFIFO) Reset() {
	f.head = 0
	f.n = 0
	f.cooling = f.cooling[:0]
	f.notFull.Release()
}

// Mailbox128 models the 4x32-bit inter-core shift register used to convey
// temporary values (e.g. the CBC-MAC tag in two-core CCM) between
// neighbouring Cryptographic Cores. It is a 1-deep 128-bit rendezvous
// buffer: writers block while full, readers block while empty.
type Mailbox128 struct {
	eng      *Engine
	val      [4]uint32
	full     bool
	notEmpty *Waiters
	notFull  *Waiters
}

// NewMailbox128 returns an empty mailbox.
func NewMailbox128(eng *Engine) *Mailbox128 {
	return &Mailbox128{eng: eng, notEmpty: NewWaiters(eng), notFull: NewWaiters(eng)}
}

// Full reports whether a value is waiting to be consumed.
func (m *Mailbox128) Full() bool { return m.full }

// TryPut stores v if the mailbox is empty and reports success.
func (m *Mailbox128) TryPut(v [4]uint32) bool {
	if m.full {
		return false
	}
	m.val = v
	m.full = true
	m.notEmpty.Release()
	return true
}

// TryTake removes and returns the stored value.
func (m *Mailbox128) TryTake() ([4]uint32, bool) {
	if !m.full {
		return [4]uint32{}, false
	}
	m.full = false
	m.notFull.Release()
	return m.val, true
}

// WhenPuttable parks fn until the mailbox may be empty.
func (m *Mailbox128) WhenPuttable(fn func()) {
	if !m.full {
		m.eng.After(0, fn)
		return
	}
	m.notFull.Park(fn)
}

// WhenTakeable parks fn until the mailbox may be full.
func (m *Mailbox128) WhenTakeable(fn func()) {
	if m.full {
		m.eng.After(0, fn)
		return
	}
	m.notEmpty.Park(fn)
}

// Flag is a level-sensitive condition (e.g. a "done" line). Setting it
// releases all waiters; waiters must re-check the level.
type Flag struct {
	eng     *Engine
	set     bool
	waiters *Waiters
}

// NewFlag returns a cleared flag.
func NewFlag(eng *Engine) *Flag { return &Flag{eng: eng, waiters: NewWaiters(eng)} }

// Set raises the flag and wakes waiters.
func (f *Flag) Set() {
	f.set = true
	f.waiters.Release()
}

// Clear lowers the flag.
func (f *Flag) Clear() { f.set = false }

// IsSet reports the level.
func (f *Flag) IsSet() bool { return f.set }

// WhenSet parks fn until the flag may be raised.
func (f *Flag) WhenSet(fn func()) {
	if f.set {
		f.eng.After(0, fn)
		return
	}
	f.waiters.Park(fn)
}
