package sim

// WordFIFO models a hardware FIFO of 32-bit words, as used between the
// MCCP crossbar and each Cryptographic Core (512 x 32 bits in the paper,
// i.e. one 2048-byte packet). Reads and writes are callback-based: a blocked
// operation parks until the FIFO state changes.
type WordFIFO struct {
	eng      *Engine
	buf      []uint32
	head     int
	n        int
	notEmpty *Waiters
	notFull  *Waiters
	// Pushed and Popped count total words moved through the FIFO; they feed
	// utilization metrics.
	Pushed uint64
	Popped uint64
}

// NewWordFIFO returns a FIFO with the given capacity in 32-bit words.
func NewWordFIFO(eng *Engine, capacity int) *WordFIFO {
	if capacity <= 0 {
		panic("sim: FIFO capacity must be positive")
	}
	return &WordFIFO{
		eng:      eng,
		buf:      make([]uint32, capacity),
		notEmpty: NewWaiters(eng),
		notFull:  NewWaiters(eng),
	}
}

// Cap returns the FIFO capacity in words.
func (f *WordFIFO) Cap() int { return len(f.buf) }

// Len returns the number of words currently stored.
func (f *WordFIFO) Len() int { return f.n }

// CanPush reports whether at least k words of space are free.
func (f *WordFIFO) CanPush(k int) bool { return f.n+k <= len(f.buf) }

// CanPop reports whether at least k words are available.
func (f *WordFIFO) CanPop(k int) bool { return f.n >= k }

// TryPush appends w if space is available and reports success.
func (f *WordFIFO) TryPush(w uint32) bool {
	if f.n == len(f.buf) {
		return false
	}
	f.buf[(f.head+f.n)%len(f.buf)] = w
	f.n++
	f.Pushed++
	f.notEmpty.Release()
	return true
}

// TryPop removes and returns the oldest word.
func (f *WordFIFO) TryPop() (uint32, bool) {
	if f.n == 0 {
		return 0, false
	}
	w := f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	f.Popped++
	f.notFull.Release()
	return w, true
}

// WhenPushable parks fn until at least k words of space may be free.
// fn must re-check CanPush (spurious wakeups are possible).
func (f *WordFIFO) WhenPushable(k int, fn func()) {
	if f.CanPush(k) {
		f.eng.After(0, fn)
		return
	}
	f.notFull.Park(fn)
}

// WhenPoppable parks fn until at least k words may be available.
// fn must re-check CanPop.
func (f *WordFIFO) WhenPoppable(k int, fn func()) {
	if f.CanPop(k) {
		f.eng.After(0, fn)
		return
	}
	f.notEmpty.Park(fn)
}

// Reset discards all contents, modeling the output-FIFO re-initialization
// the paper performs when a packet fails authentication (protects the
// master processor from reading unauthenticated plaintext).
func (f *WordFIFO) Reset() {
	f.head = 0
	f.n = 0
	f.notFull.Release()
}

// Mailbox128 models the 4x32-bit inter-core shift register used to convey
// temporary values (e.g. the CBC-MAC tag in two-core CCM) between
// neighbouring Cryptographic Cores. It is a 1-deep 128-bit rendezvous
// buffer: writers block while full, readers block while empty.
type Mailbox128 struct {
	eng      *Engine
	val      [4]uint32
	full     bool
	notEmpty *Waiters
	notFull  *Waiters
}

// NewMailbox128 returns an empty mailbox.
func NewMailbox128(eng *Engine) *Mailbox128 {
	return &Mailbox128{eng: eng, notEmpty: NewWaiters(eng), notFull: NewWaiters(eng)}
}

// Full reports whether a value is waiting to be consumed.
func (m *Mailbox128) Full() bool { return m.full }

// TryPut stores v if the mailbox is empty and reports success.
func (m *Mailbox128) TryPut(v [4]uint32) bool {
	if m.full {
		return false
	}
	m.val = v
	m.full = true
	m.notEmpty.Release()
	return true
}

// TryTake removes and returns the stored value.
func (m *Mailbox128) TryTake() ([4]uint32, bool) {
	if !m.full {
		return [4]uint32{}, false
	}
	m.full = false
	m.notFull.Release()
	return m.val, true
}

// WhenPuttable parks fn until the mailbox may be empty.
func (m *Mailbox128) WhenPuttable(fn func()) {
	if !m.full {
		m.eng.After(0, fn)
		return
	}
	m.notFull.Park(fn)
}

// WhenTakeable parks fn until the mailbox may be full.
func (m *Mailbox128) WhenTakeable(fn func()) {
	if m.full {
		m.eng.After(0, fn)
		return
	}
	m.notEmpty.Park(fn)
}

// Flag is a level-sensitive condition (e.g. a "done" line). Setting it
// releases all waiters; waiters must re-check the level.
type Flag struct {
	eng     *Engine
	set     bool
	waiters *Waiters
}

// NewFlag returns a cleared flag.
func NewFlag(eng *Engine) *Flag { return &Flag{eng: eng, waiters: NewWaiters(eng)} }

// Set raises the flag and wakes waiters.
func (f *Flag) Set() {
	f.set = true
	f.waiters.Release()
}

// Clear lowers the flag.
func (f *Flag) Clear() { f.set = false }

// IsSet reports the level.
func (f *Flag) IsSet() bool { return f.set }

// WhenSet parks fn until the flag may be raised.
func (f *Flag) WhenSet(fn func()) {
	if f.set {
		f.eng.After(0, fn)
		return
	}
	f.waiters.Park(fn)
}
