// Package sim provides a small deterministic discrete-event simulation
// engine used to model the MCCP hardware at cycle granularity.
//
// Time is measured in clock cycles of the simulated fabric clock (190 MHz in
// the paper's Virtex-4 implementation). Components schedule callbacks at
// absolute cycle times; blocking structures (FIFOs, mailboxes, condition
// flags) park callbacks until a state change occurs and then release them at
// the timestamp of the mutating event, which keeps the simulation fully
// deterministic regardless of scheduling order of same-cycle events (ties are
// broken by insertion order).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in clock cycles.
type Time uint64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation kernel. It is not safe for
// concurrent use; the whole simulation is single-threaded and deterministic.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// FreqHz is the modeled clock frequency, used only to convert cycle
	// counts into wall-clock throughput figures. The paper's MCCP runs at
	// 190 MHz on a Virtex-4 SX35-11.
	FreqHz float64
}

// DefaultFreqHz is the paper's reported operating frequency.
const DefaultFreqHz = 190e6

// NewEngine returns an engine with the clock at cycle 0 and the default
// 190 MHz frequency model.
func NewEngine() *Engine {
	return &Engine{FreqHz: DefaultFreqHz}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering time would make
// results meaningless.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. It returns the time of the last event
// executed (or the current time if none ran).
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// CyclesToSeconds converts a cycle count to seconds under the frequency model.
func (e *Engine) CyclesToSeconds(c Time) float64 { return float64(c) / e.FreqHz }

// ThroughputMbps converts (bits, cycles) into Mbps at the modeled frequency.
func (e *Engine) ThroughputMbps(bits int, cycles Time) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bits) / float64(cycles) * e.FreqHz / 1e6
}

// Waiters is a parking lot for callbacks blocked on a state change. It is
// the building block for FIFOs, mailboxes and signal conditions.
type Waiters struct {
	eng *Engine
	fns []func()
}

// NewWaiters returns an empty parking lot bound to eng.
func NewWaiters(eng *Engine) *Waiters { return &Waiters{eng: eng} }

// Park registers fn to be released on the next Release call.
func (w *Waiters) Park(fn func()) { w.fns = append(w.fns, fn) }

// Release schedules every parked callback at the current time and clears the
// lot. Callbacks re-check their condition and may park again, so spurious
// wakeups are allowed (and expected when several waiters race for one slot).
func (w *Waiters) Release() {
	if len(w.fns) == 0 {
		return
	}
	fns := w.fns
	w.fns = nil
	for _, fn := range fns {
		w.eng.After(0, fn)
	}
}

// Len reports the number of parked callbacks.
func (w *Waiters) Len() int { return len(w.fns) }
