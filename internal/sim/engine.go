// Package sim provides a small deterministic discrete-event simulation
// engine used to model the MCCP hardware at cycle granularity.
//
// Time is measured in clock cycles of the simulated fabric clock (190 MHz in
// the paper's Virtex-4 implementation). Components schedule callbacks at
// absolute cycle times; blocking structures (FIFOs, mailboxes, condition
// flags) park callbacks until a state change occurs and then release them at
// the timestamp of the mutating event, which keeps the simulation fully
// deterministic regardless of scheduling order of same-cycle events (ties are
// broken by insertion order).
//
// The event queue is built for throughput: a near-future timing wheel
// absorbs the short constant delays that dominate the hot path (the
// controller's 2-cycle instruction rate, the crossbar's 1-cycle word rate,
// the Cryptographic Unit's <=64-cycle latencies) in O(1), and a value-typed
// 4-ary min-heap holds the far future without per-event pointer allocation
// or container/heap interface boxing. Hot components additionally batch
// work inside one event and advance the clock arithmetically through
// TryAdvance, which is legal exactly when no pending event would interleave.
package sim

import (
	"fmt"
	"math/bits"
)

// Time is a point in simulated time, in clock cycles.
type Time uint64

// maxTime is the "no horizon" sentinel for Run (RunUntil narrows it).
const maxTime = ^Time(0)

// The timing wheel covers [now, now+wheelSize): every short delay the model
// schedules on the hot path (CyclesPerInstr=2, WordCycle=1, the unit's
// <=64-cycle latencies, 64-word crossbar segments) lands here in O(1).
const (
	wheelBits  = 8
	wheelSize  = 1 << wheelBits
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64
)

// event is a scheduled callback (far-future heap entry).
type event struct {
	at  Time
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
}

// wheelEvt is a near-future entry; its bucket index encodes the timestamp.
type wheelEvt struct {
	seq uint64
	fn  func()
}

// Engine is a discrete-event simulation kernel. It is not safe for
// concurrent use; the whole simulation is single-threaded and deterministic.
type Engine struct {
	now Time
	seq uint64

	// Near-future timing wheel: bucket (t & wheelMask) holds the events at
	// time t for t-now < wheelSize. Buckets are drained front-to-back
	// (entries are appended in seq order), occ is the non-empty bitmap.
	wheel      [wheelSize][]wheelEvt
	wheelHead  [wheelSize]int
	occ        [wheelWords]uint64
	wheelCount int

	// Far-future events: a value-typed 4-ary min-heap ordered by (at, seq).
	heap []event

	// horizon bounds arithmetic clock advances (TryAdvance) to the active
	// RunUntil deadline, so batching components cannot overshoot it.
	horizon Time

	// FreqHz is the modeled clock frequency, used only to convert cycle
	// counts into wall-clock throughput figures. The paper's MCCP runs at
	// 190 MHz on a Virtex-4 SX35-11.
	FreqHz float64

	// Compat disables the fast paths layered on this kernel (PicoBlaze
	// instruction batching, crossbar burst transfers, bulk FIFO moves) and
	// forces the cycle-by-cycle reference behaviour. Virtual-time results
	// are identical either way — the differential determinism tests assert
	// it — so Compat exists as the reference oracle, not as a mode users
	// should need.
	Compat bool
}

// CompatDefault seeds Engine.Compat in NewEngine. The differential
// determinism tests flip it to run whole workloads against the reference
// slow path; production code leaves it false.
var CompatDefault bool

// DefaultFreqHz is the paper's reported operating frequency.
const DefaultFreqHz = 190e6

// NewEngine returns an engine with the clock at cycle 0 and the default
// 190 MHz frequency model.
func NewEngine() *Engine {
	e := &Engine{FreqHz: DefaultFreqHz, horizon: maxTime, Compat: CompatDefault}
	// Pre-size every wheel bucket out of one backing array: the first few
	// events per bucket then never allocate, which removes the per-engine
	// warm-up churn that dominated shard-construction allocations. A bucket
	// that outgrows its carve-out reallocates privately (append semantics),
	// so buckets stay disjoint.
	backing := make([]wheelEvt, wheelSize*wheelSeedCap)
	for i := range e.wheel {
		e.wheel[i] = backing[i*wheelSeedCap : i*wheelSeedCap : (i+1)*wheelSeedCap]
	}
	e.heap = make([]event, 0, 64)
	return e
}

// wheelSeedCap is the pre-allocated capacity of each wheel bucket.
const wheelSeedCap = 8

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering time would make
// results meaningless.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	if t-e.now < wheelSize {
		i := int(t) & wheelMask
		b := e.wheel[i]
		if e.wheelHead[i] == len(b) {
			// Fully drained (or never used): recycle the bucket in place.
			b = b[:0]
			e.wheelHead[i] = 0
			e.occ[i>>6] |= 1 << uint(i&63)
		}
		e.wheel[i] = append(b, wheelEvt{seq: e.seq, fn: fn})
		e.wheelCount++
		return
	}
	e.heapPush(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// NextAt reports the timestamp of the earliest pending event.
func (e *Engine) NextAt() (Time, bool) {
	wt, wok := e.wheelNext()
	if len(e.heap) == 0 {
		return wt, wok
	}
	ht := e.heap[0].at
	if !wok || ht < wt {
		return ht, true
	}
	return wt, true
}

// TryAdvance moves the clock forward to t inside the current event, and
// reports whether it did. The advance is refused — leaving the clock
// untouched — when a pending event at or before t would interleave, or when
// t lies beyond the active RunUntil horizon. Batching components (the
// PicoBlaze instruction loop) use it to charge time arithmetically while
// provably preserving the reference event order.
func (e *Engine) TryAdvance(t Time) bool {
	if t < e.now || t > e.horizon {
		return false
	}
	if n, ok := e.NextAt(); ok && n <= t {
		return false
	}
	e.now = t
	return true
}

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was run.
func (e *Engine) Step() bool {
	at, fn, ok := e.popNext()
	if !ok {
		return false
	}
	e.now = at
	fn()
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. It returns the time of the last event
// executed (or the current time if none ran).
func (e *Engine) RunUntil(deadline Time) Time {
	prev := e.horizon
	e.horizon = deadline
	for {
		t, ok := e.NextAt()
		if !ok || t > deadline {
			break
		}
		e.Step()
	}
	e.horizon = prev
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.wheelCount + len(e.heap) }

// CyclesToSeconds converts a cycle count to seconds under the frequency model.
func (e *Engine) CyclesToSeconds(c Time) float64 { return float64(c) / e.FreqHz }

// ThroughputMbps converts (bits, cycles) into Mbps at the modeled frequency.
func (e *Engine) ThroughputMbps(bits int, cycles Time) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bits) / float64(cycles) * e.FreqHz / 1e6
}

// wheelNext scans the occupancy bitmap for the nearest non-empty bucket.
// Buckets are unique per timestamp inside the wheel window, so the first
// set bit at or after now's slot (wrapping once) is the earliest entry.
func (e *Engine) wheelNext() (Time, bool) {
	if e.wheelCount == 0 {
		return 0, false
	}
	p := int(e.now) & wheelMask
	wi, off := p>>6, uint(p&63)
	if w := e.occ[wi] >> off; w != 0 {
		return e.bucketTime(p + bits.TrailingZeros64(w)), true
	}
	for k := 1; k < wheelWords; k++ {
		wj := (wi + k) & (wheelWords - 1)
		if w := e.occ[wj]; w != 0 {
			return e.bucketTime(wj<<6 + bits.TrailingZeros64(w)), true
		}
	}
	if w := e.occ[wi] & (1<<off - 1); w != 0 {
		return e.bucketTime(wi<<6 + bits.TrailingZeros64(w)), true
	}
	panic("sim: wheel count/bitmap out of sync")
}

// bucketTime maps a bucket index back to its absolute timestamp.
func (e *Engine) bucketTime(i int) Time {
	return e.now + Time((i-int(e.now))&wheelMask)
}

// popNext removes the earliest pending event, merging wheel and heap by
// (time, seq) so same-cycle entries run in insertion order regardless of
// which structure holds them.
func (e *Engine) popNext() (Time, func(), bool) {
	wt, wok := e.wheelNext()
	hok := len(e.heap) > 0
	if !wok && !hok {
		return 0, nil, false
	}
	if wok {
		i := int(wt) & wheelMask
		if !hok || wt < e.heap[0].at ||
			(wt == e.heap[0].at && e.wheel[i][e.wheelHead[i]].seq < e.heap[0].seq) {
			return wt, e.popBucket(i), true
		}
	}
	ev := e.heapPop()
	return ev.at, ev.fn, true
}

// popBucket removes the front entry of bucket i.
func (e *Engine) popBucket(i int) func() {
	b := e.wheel[i]
	h := e.wheelHead[i]
	fn := b[h].fn
	b[h].fn = nil
	h++
	if h == len(b) {
		e.wheel[i] = b[:0]
		e.wheelHead[i] = 0
		e.occ[i>>6] &^= 1 << uint(i&63)
	} else {
		e.wheelHead[i] = h
	}
	e.wheelCount--
	return fn
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the callback for GC
	h = h[:n]
	i := 0
	for {
		best := i
		for c := 4*i + 1; c <= 4*i+4 && c < n; c++ {
			if eventLess(h[c], h[best]) {
				best = c
			}
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	e.heap = h
	return top
}

// Ticker is a reusable scheduling handle: the callback is bound once at
// construction and the handle is scheduled repeatedly without allocating a
// closure per event. Hot components (the PicoBlaze step loop) use it so the
// event queue's steady state is allocation-free.
type Ticker struct {
	eng *Engine
	fn  func()
}

// NewTicker binds fn to the engine for repeated scheduling.
func (e *Engine) NewTicker(fn func()) *Ticker { return &Ticker{eng: e, fn: fn} }

// At schedules the ticker's callback at absolute time t.
func (t *Ticker) At(at Time) { t.eng.At(at, t.fn) }

// After schedules the ticker's callback d cycles from now.
func (t *Ticker) After(d Time) { t.eng.After(d, t.fn) }

// Waiters is a parking lot for callbacks blocked on a state change. It is
// the building block for FIFOs, mailboxes and signal conditions.
type Waiters struct {
	eng *Engine
	fns []func()
	// spare recycles the previous fns backing array so the park/release
	// cycle is allocation-free in steady state (releasing used to nil the
	// slice, making every subsequent Park re-allocate it).
	spare []func()
}

// NewWaiters returns an empty parking lot bound to eng.
func NewWaiters(eng *Engine) *Waiters { return &Waiters{eng: eng} }

// Park registers fn to be released on the next Release call.
func (w *Waiters) Park(fn func()) { w.fns = append(w.fns, fn) }

// Release schedules every parked callback at the current time and clears the
// lot. Callbacks re-check their condition and may park again, so spurious
// wakeups are allowed (and expected when several waiters race for one slot).
func (w *Waiters) Release() {
	if len(w.fns) == 0 {
		return
	}
	fns := w.fns
	w.fns = w.spare[:0]
	for _, fn := range fns {
		w.eng.After(0, fn)
	}
	for i := range fns {
		fns[i] = nil // release the closures for GC
	}
	w.spare = fns[:0]
}

// Len reports the number of parked callbacks.
func (w *Waiters) Len() int { return len(w.fns) }
