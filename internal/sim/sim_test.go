package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 1) })
	e.At(5, func() { order = append(order, 0) })
	e.At(10, func() { order = append(order, 2) }) // same time: insertion order
	end := e.Run()
	if end != 10 {
		t.Errorf("final time = %d, want 10", end)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic when scheduling in the past")
		}
	}()
	e.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(5, func() { ran++ })
	e.At(15, func() { ran++ })
	e.RunUntil(10)
	if ran != 1 {
		t.Errorf("ran = %d events by t=10, want 1", ran)
	}
	if e.Now() != 10 {
		t.Errorf("now = %d, want 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 2 {
		t.Errorf("ran = %d events total, want 2", ran)
	}
}

func TestCascadedEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 100 {
			depth++
			e.After(2, recurse)
		}
	}
	e.At(0, recurse)
	if end := e.Run(); end != 200 {
		t.Errorf("end = %d, want 200", end)
	}
}

func TestThroughputMbps(t *testing.T) {
	e := NewEngine()
	// 128 bits in 49 cycles at 190 MHz: the paper's theoretical GCM
	// single-core figure, 496 Mbps.
	got := e.ThroughputMbps(128, 49)
	if got < 496 || got > 497 {
		t.Errorf("ThroughputMbps = %f, want ~496.3", got)
	}
	if e.ThroughputMbps(128, 0) != 0 {
		t.Error("zero cycles should yield zero throughput")
	}
}

func TestFIFOBasic(t *testing.T) {
	e := NewEngine()
	f := NewWordFIFO(e, 4)
	for i := uint32(0); i < 4; i++ {
		if !f.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if f.TryPush(99) {
		t.Error("push into full FIFO succeeded")
	}
	for i := uint32(0); i < 4; i++ {
		w, ok := f.TryPop()
		if !ok || w != i {
			t.Fatalf("pop = %d,%v want %d", w, ok, i)
		}
	}
	if _, ok := f.TryPop(); ok {
		t.Error("pop from empty FIFO succeeded")
	}
	if f.Pushed != 4 || f.Popped != 4 {
		t.Errorf("counters = %d/%d", f.Pushed, f.Popped)
	}
}

func TestFIFOBlockingProducerConsumer(t *testing.T) {
	e := NewEngine()
	f := NewWordFIFO(e, 2)
	const total = 50
	produced, consumed := 0, 0
	var got []uint32

	var produce func()
	produce = func() {
		if produced == total {
			return
		}
		if !f.CanPush(1) {
			f.WhenPushable(1, produce)
			return
		}
		f.TryPush(uint32(produced))
		produced++
		e.After(1, produce)
	}
	var consume func()
	consume = func() {
		if consumed == total {
			return
		}
		if !f.CanPop(1) {
			f.WhenPoppable(1, consume)
			return
		}
		w, _ := f.TryPop()
		got = append(got, w)
		consumed++
		e.After(3, consume) // slower consumer forces backpressure
	}
	e.At(0, produce)
	e.At(0, consume)
	e.Run()
	if consumed != total || produced != total {
		t.Fatalf("produced %d consumed %d", produced, consumed)
	}
	for i, w := range got {
		if w != uint32(i) {
			t.Fatalf("out of order at %d: %d", i, w)
		}
	}
}

func TestFIFOOrderProperty(t *testing.T) {
	// FIFO order is preserved for arbitrary interleavings of push/pop.
	f := func(ops []bool, vals []uint32) bool {
		e := NewEngine()
		fifo := NewWordFIFO(e, 8)
		var pushed, popped []uint32
		vi := 0
		for _, isPush := range ops {
			if isPush && vi < len(vals) {
				if fifo.TryPush(vals[vi]) {
					pushed = append(pushed, vals[vi])
				}
				vi++
			} else {
				if w, ok := fifo.TryPop(); ok {
					popped = append(popped, w)
				}
			}
		}
		for fifo.Len() > 0 {
			w, _ := fifo.TryPop()
			popped = append(popped, w)
		}
		if len(pushed) != len(popped) {
			return false
		}
		for i := range pushed {
			if pushed[i] != popped[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFIFOReset(t *testing.T) {
	e := NewEngine()
	f := NewWordFIFO(e, 4)
	f.TryPush(1)
	f.TryPush(2)
	woke := false
	f.TryPush(3)
	f.TryPush(4)
	f.WhenPushable(1, func() { woke = true })
	f.Reset()
	e.Run()
	if f.Len() != 0 {
		t.Error("reset did not empty FIFO")
	}
	if !woke {
		t.Error("reset did not wake blocked producer")
	}
}

func TestMailboxRendezvous(t *testing.T) {
	e := NewEngine()
	m := NewMailbox128(e)
	v := [4]uint32{1, 2, 3, 4}
	if !m.TryPut(v) {
		t.Fatal("put into empty mailbox failed")
	}
	if m.TryPut(v) {
		t.Fatal("put into full mailbox succeeded")
	}
	var gotVal [4]uint32
	m.WhenTakeable(func() {
		gotVal, _ = m.TryTake()
	})
	e.Run()
	if gotVal != v {
		t.Errorf("take = %v", gotVal)
	}
	if m.Full() {
		t.Error("mailbox should be empty after take")
	}
}

func TestFlag(t *testing.T) {
	e := NewEngine()
	f := NewFlag(e)
	fired := 0
	f.WhenSet(func() { fired++ })
	e.Run()
	if fired != 0 {
		t.Error("waiter fired before Set")
	}
	e.At(e.Now()+5, func() { f.Set() })
	f.WhenSet(func() { fired++ })
	e.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (both waiters released)", fired)
	}
	// WhenSet on an already-set flag fires immediately.
	f.WhenSet(func() { fired++ })
	e.Run()
	if fired != 3 {
		t.Errorf("fired = %d, want 3", fired)
	}
}

func TestWheelHeapSameCycleOrdering(t *testing.T) {
	// An event scheduled far ahead (heap) and one scheduled later but into
	// the near-future wheel at the same timestamp must still run in
	// insertion order.
	e := NewEngine()
	var order []int
	e.At(300, func() { order = append(order, 0) }) // 300-0 >= wheel window: heap
	e.At(100, func() { order = append(order, -1) })
	e.Step() // now = 100; 300 is now inside the wheel window
	e.At(300, func() { order = append(order, 1) })
	e.At(300, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 4 || order[0] != -1 || order[1] != 0 || order[2] != 1 || order[3] != 2 {
		t.Errorf("order = %v, want [-1 0 1 2]", order)
	}
}

func TestFarFutureScheduling(t *testing.T) {
	e := NewEngine()
	var at []Time
	for _, d := range []Time{1, 255, 256, 1000, 100000} {
		e.After(d, func() { at = append(at, e.Now()) })
	}
	e.Run()
	want := []Time{1, 255, 256, 1000, 100000}
	if len(at) != len(want) {
		t.Fatalf("ran %d events, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("event %d ran at %d, want %d", i, at[i], want[i])
		}
	}
}

func TestNextAtAndTryAdvance(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Error("NextAt on empty engine reported an event")
	}
	if !e.TryAdvance(50) {
		t.Error("TryAdvance with empty queue refused")
	}
	if e.Now() != 50 {
		t.Errorf("now = %d, want 50", e.Now())
	}
	e.At(60, func() {})
	if n, ok := e.NextAt(); !ok || n != 60 {
		t.Errorf("NextAt = %d,%v want 60,true", n, ok)
	}
	if e.TryAdvance(60) {
		t.Error("TryAdvance onto a pending event succeeded")
	}
	if !e.TryAdvance(59) {
		t.Error("TryAdvance short of the pending event refused")
	}
	if e.TryAdvance(10) {
		t.Error("TryAdvance into the past succeeded")
	}
}

func TestTryAdvanceHonorsRunUntilHorizon(t *testing.T) {
	// A batching component must not advance past the RunUntil deadline.
	e := NewEngine()
	reached := Time(0)
	var batch func()
	batch = func() {
		for e.TryAdvance(e.Now() + 2) {
			reached = e.Now()
			if reached > 1000 {
				t.Fatal("runaway batch")
			}
		}
		if reached < 10 {
			e.After(2, batch)
		}
	}
	e.At(0, batch)
	e.RunUntil(10)
	if reached != 10 {
		t.Errorf("batch reached %d, want exactly the deadline 10", reached)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.NewTicker(func() {
		count++
		if count < 5 {
			tk.After(3)
		}
	})
	tk.At(1)
	end := e.Run()
	if count != 5 || end != 13 {
		t.Errorf("count=%d end=%d, want 5 at t=13", count, end)
	}
}

func TestFIFOBulkPushReadySchedule(t *testing.T) {
	// A bulk-pushed burst becomes poppable word by word on the reference
	// one-word-per-cycle schedule.
	e := NewEngine()
	f := NewWordFIFO(e, 8)
	e.At(10, func() { f.BulkPush([]uint32{1, 2, 3, 4}, 10, 1) })
	var popped []Time
	e.At(10, func() {
		var drain func()
		drain = func() {
			for {
				if _, ok := f.TryPop(); !ok {
					break
				}
				popped = append(popped, e.Now())
			}
			if len(popped) < 4 {
				f.WhenPoppable(1, drain)
			}
		}
		drain()
	})
	e.Run()
	want := []Time{10, 11, 12, 13}
	if len(popped) != 4 {
		t.Fatalf("popped %d words, want 4", len(popped))
	}
	for i := range want {
		if popped[i] != want[i] {
			t.Errorf("word %d popped at %d, want %d", i, popped[i], want[i])
		}
	}
	if !f.CanPush(8) {
		t.Error("drained FIFO should have full capacity")
	}
}

func TestFIFOBulkPopCooling(t *testing.T) {
	// Bulk-popped slots free on the reference schedule: a pusher blocked on
	// the cooling space wakes exactly when the words would have drained.
	e := NewEngine()
	f := NewWordFIFO(e, 4)
	for i := uint32(0); i < 4; i++ {
		f.TryPush(i)
	}
	e.At(20, func() {
		if !f.CanPopSchedule(4, 20, 1) {
			t.Error("full FIFO should satisfy the drain schedule")
		}
		got := f.BulkPop(nil, 4, 20, 1)
		if len(got) != 4 || got[0] != 0 || got[3] != 3 {
			t.Errorf("BulkPop = %v", got)
		}
	})
	var pushedAt Time
	e.At(20, func() {
		var try func()
		try = func() {
			if f.CanPush(4) {
				pushedAt = e.Now()
				return
			}
			f.WhenPushable(4, try)
		}
		try()
	})
	e.Run()
	// Slot 3 cools until cycle 23: pushing 4 words is first possible then.
	if pushedAt != 23 {
		t.Errorf("pusher woke at %d, want 23", pushedAt)
	}
}
