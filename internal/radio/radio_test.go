package radio_test

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	"math/rand"
	"testing"

	"mccp/internal/aes"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/modes"
	"mccp/internal/radio"
	"mccp/internal/sim"
)

// rig is a full platform: engine, device, controllers.
type rig struct {
	eng *sim.Engine
	dev *core.MCCP
	cc  *radio.CommController
	mc  *radio.MainController
}

func newRig(cfg core.Config) *rig {
	eng := sim.NewEngine()
	dev := core.New(eng, cfg)
	cc := radio.NewCommController(dev)
	mc := radio.NewMainController(dev, 0xC0FFEE)
	eng.Run() // settle the cores into their idle HALT
	return &rig{eng: eng, dev: dev, cc: cc, mc: mc}
}

// open provisions a key and opens a channel synchronously (driving the sim).
func (r *rig) open(t *testing.T, s core.Suite, keyLen int) (int, []byte) {
	t.Helper()
	keyID, key, err := r.mc.ProvisionKey(keyLen)
	if err != nil {
		t.Fatal(err)
	}
	ch := 0
	r.cc.OpenChannel(s, keyID, func(c int, err error) {
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		ch = c
	})
	r.eng.Run()
	if ch == 0 {
		t.Fatal("OPEN did not complete")
	}
	return ch, key
}

func (r *rig) encrypt(t *testing.T, ch int, nonce, aad, pt []byte) []byte {
	t.Helper()
	var out []byte
	done := false
	r.cc.Encrypt(ch, nonce, aad, pt, func(b []byte, err error) {
		if err != nil {
			t.Fatalf("encrypt: %v", err)
		}
		out = b
		done = true
	})
	r.eng.Run()
	if !done {
		t.Fatal("encrypt did not complete (deadlock)")
	}
	return out
}

func (r *rig) decrypt(t *testing.T, ch int, nonce, aad, ct, tag []byte) ([]byte, error) {
	t.Helper()
	var out []byte
	var derr error
	done := false
	r.cc.Decrypt(ch, nonce, aad, ct, tag, func(b []byte, err error) {
		out, derr = b, err
		done = true
	})
	r.eng.Run()
	if !done {
		t.Fatal("decrypt did not complete (deadlock)")
	}
	return out, derr
}

func TestEndToEndGCMAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	r := newRig(core.Config{})
	ch, key := r.open(t, core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, 16)

	for i := 0; i < 12; i++ {
		nonce := make([]byte, 12)
		aad := make([]byte, rng.Intn(48))
		pt := make([]byte, rng.Intn(2048))
		rng.Read(nonce)
		rng.Read(aad)
		rng.Read(pt)

		got := r.encrypt(t, ch, nonce, aad, pt)

		blk, _ := stdaes.NewCipher(key)
		ref, _ := cipher.NewGCM(blk)
		want := ref.Seal(nil, nonce, pt, aad)
		if !bytes.Equal(got, want) {
			t.Fatalf("packet %d: device output != crypto/cipher GCM\n got %x\nwant %x", i, got, want)
		}

		pt2, err := r.decrypt(t, ch, nonce, aad, got[:len(pt)], got[len(pt):])
		if err != nil || !bytes.Equal(pt2, pt) {
			t.Fatalf("packet %d: decrypt roundtrip failed: %v", i, err)
		}
	}
}

func TestEndToEndCCMSingleAndSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for _, split := range []bool{false, true} {
		r := newRig(core.Config{})
		ch, key := r.open(t, core.Suite{Family: cryptocore.FamilyCCM, TagLen: 8, SplitCCM: split}, 16)
		for i := 0; i < 6; i++ {
			nonce := make([]byte, 13)
			aad := make([]byte, rng.Intn(32))
			pt := make([]byte, 1+rng.Intn(2047))
			rng.Read(nonce)
			rng.Read(aad)
			rng.Read(pt)

			got := r.encrypt(t, ch, nonce, aad, pt)
			want, err := modes.CCMSeal(aes.MustNew(key), nonce, aad, pt, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("split=%v packet %d: CCM mismatch", split, i)
			}
			pt2, err := r.decrypt(t, ch, nonce, aad, got[:len(pt)], got[len(pt):])
			if err != nil || !bytes.Equal(pt2, pt) {
				t.Fatalf("split=%v packet %d: decrypt failed: %v", split, i, err)
			}
		}
	}
}

func TestEndToEndAuthFailure(t *testing.T) {
	r := newRig(core.Config{})
	ch, _ := r.open(t, core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, 16)
	nonce := make([]byte, 12)
	pt := []byte("radio packet with integrity protection")
	sealed := r.encrypt(t, ch, nonce, nil, pt)
	ct, tag := sealed[:len(pt)], sealed[len(pt):]

	badTag := append([]byte(nil), tag...)
	badTag[5] ^= 1
	out, err := r.decrypt(t, ch, nonce, nil, ct, badTag)
	if err != radio.ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
	if len(out) != 0 {
		t.Fatalf("leaked %d bytes on auth failure", len(out))
	}
	if r.dev.Stats.AuthFails != 1 {
		t.Errorf("device auth-fail count = %d", r.dev.Stats.AuthFails)
	}
	// The device must remain fully usable afterwards.
	pt2, err := r.decrypt(t, ch, nonce, nil, ct, tag)
	if err != nil || !bytes.Equal(pt2, pt) {
		t.Fatalf("device wedged after auth failure: %v", err)
	}
}

func TestMultiChannelConcurrency(t *testing.T) {
	// Four channels with different suites and keys, packets in flight
	// simultaneously on a 4-core device; every result must be correct.
	rng := rand.New(rand.NewSource(79))
	r := newRig(core.Config{})

	gcmCh, gcmKey := r.open(t, core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, 16)
	ccmCh, ccmKey := r.open(t, core.Suite{Family: cryptocore.FamilyCCM, TagLen: 8}, 24)
	gcm2Ch, gcm2Key := r.open(t, core.Suite{Family: cryptocore.FamilyGCM, TagLen: 12}, 32)
	ctrCh, ctrKey := r.open(t, core.Suite{Family: cryptocore.FamilyCTR}, 16)

	type result struct {
		got  []byte
		want []byte
	}
	var results []*result
	expect := func(want []byte) func([]byte, error) {
		res := &result{want: want}
		results = append(results, res)
		return func(b []byte, err error) {
			if err != nil {
				t.Errorf("packet error: %v", err)
			}
			res.got = b
		}
	}

	for round := 0; round < 5; round++ {
		gcmNonce := make([]byte, 12)
		ccmNonce := make([]byte, 13)
		icb := make([]byte, 16)
		pt1 := make([]byte, 400+rng.Intn(400))
		pt2 := make([]byte, 200+rng.Intn(600))
		pt3 := make([]byte, 100+rng.Intn(100))
		pt4 := make([]byte, 777)
		rng.Read(gcmNonce)
		rng.Read(ccmNonce)
		rng.Read(icb)
		icb[14], icb[15] = 0, 0
		rng.Read(pt1)
		rng.Read(pt2)
		rng.Read(pt3)
		rng.Read(pt4)

		blk, _ := stdaes.NewCipher(gcmKey)
		ref1, _ := cipher.NewGCM(blk)
		r.cc.Encrypt(gcmCh, gcmNonce, nil, pt1, expect(ref1.Seal(nil, gcmNonce, pt1, nil)))

		want2, _ := modes.CCMSeal(aes.MustNew(ccmKey), ccmNonce, nil, pt2, 8)
		r.cc.Encrypt(ccmCh, ccmNonce, nil, pt2, expect(want2))

		blk3, _ := stdaes.NewCipher(gcm2Key)
		ref3, _ := cipher.NewGCM(blk3)
		want3 := ref3.Seal(nil, gcmNonce, pt3, nil)
		want3 = append(want3[:len(pt3)], want3[len(pt3):len(pt3)+12]...)
		r.cc.Encrypt(gcm2Ch, gcmNonce, nil, pt3, expect(want3))

		var icbBlock [16]byte
		copy(icbBlock[:], icb)
		want4 := modes.CTR(aes.MustNew(ctrKey), toBlock(icb), pt4)
		r.cc.Encrypt(ctrCh, icb, nil, pt4, expect(want4))

		r.eng.Run()
	}

	for i, res := range results {
		if res.got == nil {
			t.Fatalf("packet %d never completed", i)
		}
		if !bytes.Equal(res.got, res.want) {
			t.Fatalf("packet %d mismatch:\n got %x\nwant %x", i, res.got, res.want)
		}
	}
}

func toBlock(b []byte) (out [16]byte) { copy(out[:], b); return }

func TestNoResourcesErrorFlag(t *testing.T) {
	// Five simultaneous submits on a four-core device without queueing:
	// the fifth gets the paper's error flag.
	r := newRig(core.Config{Cores: 4})
	ch, _ := r.open(t, core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, 16)
	nonce := make([]byte, 12)
	pt := make([]byte, 2048)

	okCount, rejCount := 0, 0
	for i := 0; i < 5; i++ {
		r.cc.Encrypt(ch, nonce, nil, pt, func(_ []byte, err error) {
			if err == core.ErrNoResources {
				rejCount++
			} else if err == nil {
				okCount++
			} else {
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
	r.eng.Run()
	if okCount != 4 || rejCount != 1 {
		t.Fatalf("ok=%d rejected=%d, want 4/1", okCount, rejCount)
	}
	if r.dev.Stats.Rejected != 1 {
		t.Errorf("Stats.Rejected = %d", r.dev.Stats.Rejected)
	}
}

func TestQueueingExtensionAbsorbsBurst(t *testing.T) {
	// With the QoS extension, a burst of 12 packets on 4 cores completes
	// without error flags.
	r := newRig(core.Config{Cores: 4, QueueRequests: true})
	ch, key := r.open(t, core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, 16)
	nonce := make([]byte, 12)

	blk, _ := stdaes.NewCipher(key)
	ref, _ := cipher.NewGCM(blk)

	completed := 0
	for i := 0; i < 12; i++ {
		pt := make([]byte, 64*(i+1))
		pt[0] = byte(i)
		want := ref.Seal(nil, nonce, pt, nil)
		r.cc.Encrypt(ch, nonce, nil, pt, func(got []byte, err error) {
			if err != nil {
				t.Errorf("packet %d: %v", completed, err)
			} else if !bytes.Equal(got, want) {
				t.Errorf("queued packet mismatch")
			}
			completed++
		})
	}
	r.eng.Run()
	if completed != 12 {
		t.Fatalf("completed = %d, want 12", completed)
	}
	if r.dev.Stats.Queued == 0 {
		t.Error("expected some requests to queue")
	}
}

func TestKeyCacheAvoidsReexpansion(t *testing.T) {
	r := newRig(core.Config{Cores: 1})
	ch, _ := r.open(t, core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, 16)
	nonce := make([]byte, 12)
	for i := 0; i < 5; i++ {
		r.encrypt(t, ch, nonce, nil, make([]byte, 256))
	}
	if got := r.dev.KeySched.Expansions; got != 1 {
		t.Errorf("key expansions = %d, want 1 (cache must absorb repeats)", got)
	}
	if r.dev.Caches[0].Hits != 4 {
		t.Errorf("cache hits = %d, want 4", r.dev.Caches[0].Hits)
	}
}

func TestProtocolErrors(t *testing.T) {
	r := newRig(core.Config{})
	// OPEN with unknown key.
	r.dev.Open(core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, 999, func(_ int, err error) {
		if err == nil {
			t.Error("OPEN with unknown key succeeded")
		}
	})
	// Submit on closed channel.
	r.dev.Submit(42, true, 0, 64, func(_ core.Assignment, err error) {
		if err != core.ErrBadChannel {
			t.Errorf("submit on bad channel: %v", err)
		}
	})
	// RETRIEVE_DATA on empty queue.
	r.dev.RetrieveData(func(_ core.Retrieval, err error) {
		if err != core.ErrNoData {
			t.Errorf("retrieve on empty queue: %v", err)
		}
	})
	// CLOSE of unknown channel.
	r.dev.Close(42, func(err error) {
		if err != core.ErrBadChannel {
			t.Errorf("close unknown channel: %v", err)
		}
	})
	// TRANSFER_DONE for unknown request.
	r.dev.TransferDone(1234, func(err error) {
		if err == nil {
			t.Error("TRANSFER_DONE for unknown request succeeded")
		}
	})
	r.eng.Run()
	// Open/close lifecycle.
	ch, _ := r.open(t, core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, 16)
	r.cc.CloseChannel(ch, func(err error) {
		if err != nil {
			t.Errorf("close: %v", err)
		}
	})
	r.eng.Run()
	r.cc.Encrypt(ch, make([]byte, 12), nil, []byte("x"), func(_ []byte, err error) {
		if err == nil {
			t.Error("encrypt on closed channel succeeded")
		}
	})
	r.eng.Run()
}
