// Package radio models the platform around the MCCP (paper §III.A): the
// communication controller that formats packets, drives the MCCP control
// protocol and moves data through the crossbar, and the main controller
// that provisions session keys. This file implements the packet formatting
// contract — the exact FIFO framing each firmware routine expects.
package radio

import (
	"fmt"

	"mccp/internal/bits"
	"mccp/internal/bufpool"
	"mccp/internal/cryptocore"
	"mccp/internal/firmware"
	"mccp/internal/modes"
)

// MaxPayload is the largest payload one core FIFO accepts (the paper's
// 2048-byte packet FIFO).
const MaxPayload = 2048

// Frame is a formatted task for one Cryptographic Core: the input FIFO
// block stream, the task parameters, and the number of 32-bit words the
// core will produce in its output FIFO on success.
//
// In is staged in a bufpool block buffer: the owner may recycle it with
// bufpool.PutBlocks once the stream has been consumed (the communication
// controller does, right after converting it to crossbar words); callers
// that keep it simply leave it to the GC.
type Frame struct {
	In       []bits.Block
	Task     cryptocore.Task
	OutWords int
}

// blockCount returns the padded block count of an n-byte field.
func blockCount(n int) int { return (n + bits.BlockBytes - 1) / bits.BlockBytes }

func dataParams(n int) (blocks uint8, lastMask uint16) {
	nb := (n + bits.BlockBytes - 1) / bits.BlockBytes
	tail := n % bits.BlockBytes
	if tail == 0 && n > 0 {
		tail = bits.BlockBytes
	}
	return uint8(nb), bits.MaskForLen(tail)
}

func checkSizes(aad, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("radio: payload %d exceeds the %d-byte packet FIFO", len(payload), MaxPayload)
	}
	if len(aad) > MaxPayload {
		return fmt.Errorf("radio: AAD %d exceeds the %d-byte packet FIFO", len(aad), MaxPayload)
	}
	return nil
}

// FrameGCMEnc builds the GCM encryption stream:
// [J0] [AAD]* [PT]* [LEN]  ->  [CT]* [TAG].
func FrameGCMEnc(nonce, aad, payload []byte) (Frame, error) {
	if err := checkSizes(aad, payload); err != nil {
		return Frame{}, err
	}
	aadBlocks := blockCount(len(aad))
	dataBlocks, lastMask := dataParams(len(payload))
	in := bufpool.Blocks(2 + aadBlocks + int(dataBlocks))
	in = append(in, modes.GCMJ0(nonce))
	in = bits.AppendPadBlocks(in, aad)
	in = bits.AppendPadBlocks(in, payload)
	in = append(in, modes.GCMLengths(len(aad), len(payload)))
	return Frame{
		In: in,
		Task: cryptocore.Task{
			Mode:       firmware.ModeGCMEnc,
			HdrBlocks:  uint8(aadBlocks),
			DataBlocks: dataBlocks,
			LastMask:   lastMask,
		},
		OutWords: 4*int(dataBlocks) + 4, // ciphertext blocks + tag block
	}, nil
}

// FrameGCMDec builds the GCM decryption stream:
// [J0] [AAD]* [CT]* [LEN] [TAG]  ->  [PT]*.
func FrameGCMDec(nonce, aad, ct, tag []byte) (Frame, error) {
	if err := checkSizes(aad, ct); err != nil {
		return Frame{}, err
	}
	if len(tag) == 0 || len(tag) > 16 {
		return Frame{}, fmt.Errorf("radio: tag length %d out of range", len(tag))
	}
	aadBlocks := blockCount(len(aad))
	dataBlocks, lastMask := dataParams(len(ct))
	in := bufpool.Blocks(3 + aadBlocks + int(dataBlocks))
	in = append(in, modes.GCMJ0(nonce))
	in = bits.AppendPadBlocks(in, aad)
	in = bits.AppendPadBlocks(in, ct)
	in = append(in, modes.GCMLengths(len(aad), len(ct)))
	var tagBlock bits.Block
	copy(tagBlock[:], tag)
	in = append(in, tagBlock)
	return Frame{
		In: in,
		Task: cryptocore.Task{
			Mode:       firmware.ModeGCMDec,
			HdrBlocks:  uint8(aadBlocks),
			DataBlocks: dataBlocks,
			LastMask:   lastMask,
			TagMask:    bits.MaskForLen(len(tag)),
		},
		OutWords: 4 * int(dataBlocks),
	}, nil
}

// FrameCCMEnc builds the one-core CCM encryption stream:
// [A0] [B0] [AAD-enc]* [PT]* [A0]  ->  [CT]* [TAG].
func FrameCCMEnc(nonce, aad, payload []byte, tagLen int) (Frame, error) {
	if err := checkSizes(aad, payload); err != nil {
		return Frame{}, err
	}
	b0, a0, err := modes.CCMB0A0(nonce, len(aad), len(payload), tagLen)
	if err != nil {
		return Frame{}, err
	}
	aadBlocks := ccmAADBlocks(len(aad))
	dataBlocks, lastMask := dataParams(len(payload))
	in := bufpool.Blocks(3 + aadBlocks + int(dataBlocks))
	in = append(in, a0, b0)
	in = modes.AppendCCMEncodeAAD(in, aad)
	in = bits.AppendPadBlocks(in, payload)
	in = append(in, a0)
	return Frame{
		In: in,
		Task: cryptocore.Task{
			Mode:       firmware.ModeCCMEnc,
			HdrBlocks:  uint8(aadBlocks),
			DataBlocks: dataBlocks,
			LastMask:   lastMask,
		},
		OutWords: 4*int(dataBlocks) + 4,
	}, nil
}

// ccmAADBlocks returns the block count of CCM's length-prefixed AAD
// encoding (see modes.AppendCCMEncodeAAD).
func ccmAADBlocks(aadLen int) int {
	if aadLen == 0 {
		return 0
	}
	prefix := 2
	if aadLen >= 0xFF00 {
		prefix = 6
	}
	return blockCount(prefix + aadLen)
}

// FrameCCMDec builds the one-core CCM decryption stream:
// [A0] [B0] [AAD-enc]* [CT]* [A0] [TAG]  ->  [PT]*.
func FrameCCMDec(nonce, aad, ct, tag []byte, tagLen int) (Frame, error) {
	if err := checkSizes(aad, ct); err != nil {
		return Frame{}, err
	}
	if len(tag) != tagLen {
		return Frame{}, fmt.Errorf("radio: tag is %d bytes, want %d", len(tag), tagLen)
	}
	b0, a0, err := modes.CCMB0A0(nonce, len(aad), len(ct), tagLen)
	if err != nil {
		return Frame{}, err
	}
	aadBlocks := ccmAADBlocks(len(aad))
	dataBlocks, lastMask := dataParams(len(ct))
	in := bufpool.Blocks(4 + aadBlocks + int(dataBlocks))
	in = append(in, a0, b0)
	in = modes.AppendCCMEncodeAAD(in, aad)
	in = bits.AppendPadBlocks(in, ct)
	in = append(in, a0)
	var tagBlock bits.Block
	copy(tagBlock[:], tag)
	in = append(in, tagBlock)
	return Frame{
		In: in,
		Task: cryptocore.Task{
			Mode:       firmware.ModeCCMDec,
			HdrBlocks:  uint8(aadBlocks),
			DataBlocks: dataBlocks,
			LastMask:   lastMask,
			TagMask:    bits.MaskForLen(tagLen),
		},
		OutWords: 4 * int(dataBlocks),
	}, nil
}

// FrameCTR builds the bare counter-mode stream: [ICB] [DATA]* -> [DATA']*.
func FrameCTR(icb bits.Block, data []byte) (Frame, error) {
	if err := checkSizes(nil, data); err != nil {
		return Frame{}, err
	}
	dataBlocks, lastMask := dataParams(len(data))
	in := append(bufpool.Blocks(1+int(dataBlocks)), icb)
	in = bits.AppendPadBlocks(in, data)
	return Frame{
		In: in,
		Task: cryptocore.Task{
			Mode:       firmware.ModeCTR,
			DataBlocks: dataBlocks,
			LastMask:   lastMask,
		},
		OutWords: 4 * int(dataBlocks),
	}, nil
}

// FrameCBCMAC builds the FIPS-113 CBC-MAC stream over pre-padded blocks:
// [DATA]* -> [MAC].
func FrameCBCMAC(blocks []bits.Block) (Frame, error) {
	if len(blocks) > MaxPayload/bits.BlockBytes {
		return Frame{}, fmt.Errorf("radio: %d blocks exceed the packet FIFO", len(blocks))
	}
	return Frame{
		In: blocks,
		Task: cryptocore.Task{
			Mode:       firmware.ModeCBCMAC,
			DataBlocks: uint8(len(blocks)),
			LastMask:   0xFFFF,
		},
		OutWords: 4,
	}, nil
}

// FrameCCM2 builds the two-core CCM split: the CBC-MAC half and the CTR
// half. The payload stream is written to both cores; the MAC travels over
// the inter-core shift register (paper §IV.A).
func FrameCCM2(encrypt bool, nonce, aad, payload, tag []byte, tagLen int) (mac Frame, ctr Frame, err error) {
	if err := checkSizes(aad, payload); err != nil {
		return Frame{}, Frame{}, err
	}
	b0, a0, err := modes.CCMB0A0(nonce, len(aad), len(payload), tagLen)
	if err != nil {
		return Frame{}, Frame{}, err
	}
	aadBlocks := ccmAADBlocks(len(aad))
	dataBlocks, lastMask := dataParams(len(payload))

	// CBC-MAC half: encrypt reads plaintext from its FIFO; decrypt receives
	// the recovered plaintext over the shift register.
	mac.In = bufpool.Blocks(1 + aadBlocks + int(dataBlocks))
	mac.In = append(mac.In, b0)
	mac.In = modes.AppendCCMEncodeAAD(mac.In, aad)
	macMode := firmware.ModeCCM2MacEnc
	if encrypt {
		mac.In = bits.AppendPadBlocks(mac.In, payload)
	} else {
		macMode = firmware.ModeCCM2MacDec
	}
	mac.Task = cryptocore.Task{
		Mode:       macMode,
		HdrBlocks:  uint8(aadBlocks),
		DataBlocks: dataBlocks,
		LastMask:   0xFFFF,
	}

	// CTR half.
	ctr.In = bufpool.Blocks(3 + int(dataBlocks))
	ctr.In = append(ctr.In, a0)
	ctr.In = bits.AppendPadBlocks(ctr.In, payload)
	ctr.In = append(ctr.In, a0)
	ctrMode := firmware.ModeCCM2CtrEnc
	ctr.OutWords = 4*int(dataBlocks) + 4
	if !encrypt {
		ctrMode = firmware.ModeCCM2CtrDec
		ctr.OutWords = 4 * int(dataBlocks)
		if len(tag) != tagLen {
			return Frame{}, Frame{}, fmt.Errorf("radio: tag is %d bytes, want %d", len(tag), tagLen)
		}
		var tagBlock bits.Block
		copy(tagBlock[:], tag)
		ctr.In = append(ctr.In, tagBlock)
	}
	ctr.Task = cryptocore.Task{
		Mode:       ctrMode,
		DataBlocks: dataBlocks,
		LastMask:   lastMask,
		TagMask:    bits.MaskForLen(tagLen),
	}
	return mac, ctr, nil
}
