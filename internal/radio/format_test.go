package radio_test

import (
	"testing"

	"mccp/internal/bits"
	"mccp/internal/cryptocore"
	"mccp/internal/firmware"
	"mccp/internal/modes"
	"mccp/internal/radio"
)

func TestFrameGCMEncLayout(t *testing.T) {
	nonce := make([]byte, 12)
	nonce[0] = 0xAA
	aad := make([]byte, 20)     // 2 padded blocks
	payload := make([]byte, 40) // 3 blocks, 8-byte tail
	f, err := radio.FrameGCMEnc(nonce, aad, payload)
	if err != nil {
		t.Fatal(err)
	}
	// [J0][AAD x2][PT x3][LEN] = 7 blocks.
	if len(f.In) != 7 {
		t.Fatalf("stream = %d blocks", len(f.In))
	}
	if f.In[0] != modes.GCMJ0(nonce) {
		t.Error("first block must be J0")
	}
	if f.In[6] != modes.GCMLengths(20, 40) {
		t.Error("last block must be the lengths block")
	}
	if f.Task.HdrBlocks != 2 || f.Task.DataBlocks != 3 {
		t.Errorf("task = %+v", f.Task)
	}
	if f.Task.LastMask != bits.MaskForLen(8) {
		t.Errorf("last mask = %#x", f.Task.LastMask)
	}
	if f.OutWords != 16 { // 3 CT blocks + tag
		t.Errorf("out words = %d", f.OutWords)
	}
	// The formatter's task must agree with the scheduler's planner — the
	// two sides of the FIFO contract.
	planned, err := cryptocore.PlanTasks(cryptocore.FamilyGCM, true, false, 20, 40, 16)
	if err != nil {
		t.Fatal(err)
	}
	if planned[0] != f.Task {
		t.Errorf("planner %+v != formatter %+v", planned[0], f.Task)
	}
}

func TestFrameCCMEncLayout(t *testing.T) {
	nonce := make([]byte, 13)
	aad := make([]byte, 5)
	payload := make([]byte, 16)
	f, err := radio.FrameCCMEnc(nonce, aad, payload, 8)
	if err != nil {
		t.Fatal(err)
	}
	// [A0][B0][AADenc x1][PT x1][A0] = 5 blocks, A0 duplicated at the end
	// so the firmware can recompute S0 with only four bank registers.
	if len(f.In) != 5 {
		t.Fatalf("stream = %d blocks", len(f.In))
	}
	if f.In[0] != f.In[4] {
		t.Error("A0 must be duplicated at the stream end")
	}
	b0, a0, err := modes.CCMB0A0(nonce, len(aad), len(payload), 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.In[0] != a0 || f.In[1] != b0 {
		t.Error("A0/B0 header wrong")
	}
	if b0[0]&0x40 == 0 {
		t.Error("B0 Adata flag must be set when AAD present")
	}
}

func TestFrameCCMNoAADFlag(t *testing.T) {
	b0, _, err := modes.CCMB0A0(make([]byte, 13), 0, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b0[0]&0x40 != 0 {
		t.Error("Adata flag set with empty AAD")
	}
}

func TestFrameSizeLimits(t *testing.T) {
	big := make([]byte, radio.MaxPayload+1)
	if _, err := radio.FrameGCMEnc(make([]byte, 12), nil, big); err == nil {
		t.Error("oversized GCM payload accepted")
	}
	if _, err := radio.FrameCCMEnc(make([]byte, 13), big, nil, 8); err == nil {
		t.Error("oversized AAD accepted")
	}
	if _, err := radio.FrameGCMDec(make([]byte, 12), nil, nil, make([]byte, 17)); err == nil {
		t.Error("17-byte tag accepted")
	}
	if _, err := radio.FrameCCMDec(make([]byte, 13), nil, nil, make([]byte, 4), 8); err == nil {
		t.Error("tag length mismatch accepted")
	}
	blocks := make([]bits.Block, radio.MaxPayload/16+1)
	if _, err := radio.FrameCBCMAC(blocks); err == nil {
		t.Error("oversized CBC-MAC input accepted")
	}
}

func TestFrameCCM2StreamsBothHalves(t *testing.T) {
	payload := make([]byte, 48)
	mac, ctr, err := radio.FrameCCM2(true, make([]byte, 13), make([]byte, 4), payload, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	// MAC half: [B0][AADenc][PT x3]; CTR half: [A0][PT x3][A0].
	if len(mac.In) != 5 || len(ctr.In) != 5 {
		t.Fatalf("mac=%d ctr=%d blocks", len(mac.In), len(ctr.In))
	}
	if mac.Task.Mode != firmware.ModeCCM2MacEnc || ctr.Task.Mode != firmware.ModeCCM2CtrEnc {
		t.Errorf("modes = %v/%v", mac.Task.Mode, ctr.Task.Mode)
	}
	if mac.OutWords != 0 {
		t.Error("MAC half produces no FIFO output (shift register only)")
	}
	// Decrypt: the MAC half receives plaintext over the shift register, so
	// its stream carries no payload.
	macD, ctrD, err := radio.FrameCCM2(false, make([]byte, 13), make([]byte, 4), payload, make([]byte, 8), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(macD.In) != 2 { // B0 + AADenc only
		t.Errorf("decrypt MAC stream = %d blocks", len(macD.In))
	}
	if len(ctrD.In) != 6 { // A0 + CT x3 + A0 + TAG
		t.Errorf("decrypt CTR stream = %d blocks", len(ctrD.In))
	}
}

func TestPlanTasksValidation(t *testing.T) {
	if _, err := cryptocore.PlanTasks(cryptocore.FamilyGCM, true, false, 0, 2049, 16); err == nil {
		t.Error("129-block payload accepted")
	}
	if _, err := cryptocore.PlanTasks(cryptocore.FamilyCBCMAC, true, false, 0, 17, 0); err == nil {
		t.Error("partial-block CBC-MAC accepted")
	}
	if _, err := cryptocore.PlanTasks(cryptocore.FamilyHash, true, false, 0, 40, 0); err == nil {
		t.Error("unpadded hash input accepted")
	}
	if _, err := cryptocore.PlanTasks(cryptocore.FamilyGCM, true, false, -1, 0, 16); err == nil {
		t.Error("negative length accepted")
	}
	// Split plan returns MAC half then CTR half.
	ts, err := cryptocore.PlanTasks(cryptocore.FamilyCCM, false, true, 8, 64, 8)
	if err != nil || len(ts) != 2 {
		t.Fatalf("split plan: %v %v", ts, err)
	}
	if ts[0].Mode != firmware.ModeCCM2MacDec || ts[1].Mode != firmware.ModeCCM2CtrDec {
		t.Errorf("split decrypt modes = %v/%v", ts[0].Mode, ts[1].Mode)
	}
}
