package radio

import (
	"fmt"

	"mccp/internal/bits"
	"mccp/internal/bufpool"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/firmware"
	"mccp/internal/modes"
	"mccp/internal/obs"
	"mccp/internal/whirlpool"
)

// CommController is the platform's communication controller (paper §III.A):
// it owns the MCCP control port, formats packets per the mode-of-operation
// specifications, streams them through the Cross Bar, services the Data
// Available interrupt and reassembles results.
//
// Result buffers handed to completion callbacks come from bufpool: a
// consumer that is done with one may recycle it with bufpool.PutBytes
// (the cluster workload drivers do); retaining it is equally safe — a
// buffer is never recycled behind the callback's back.
type CommController struct {
	dev *core.MCCP

	// inflight tracks requests between dispatch and retrieval; freeReq
	// heads the request pool (requests carry prebuilt callbacks, so the
	// steady-state packet path does not allocate here).
	inflight map[int]*inflightReq
	freeReq  *inflightReq
	suites   map[int]core.Suite // channel -> suite (for formatting)
	draining bool

	// Current retrieval state. The drain loop is strictly serialized
	// (retrieve -> read -> transfer-done -> next), so a single set of
	// fields plus prebuilt continuations replaces a closure chain per
	// packet.
	cur     *inflightReq
	curR    core.Retrieval
	pendOut []byte
	pendErr error

	onRetrieve func(core.Retrieval, error)
	onWords    func([]uint32)
	onTD       func(error)

	// Completions counts packets fully round-tripped.
	Completions uint64

	// tr is the lifecycle tracer shared with the shaper above (nil =
	// untraced). The controller only marks stage boundaries — assignment,
	// upload complete, retrieval — on the span the shaper parked; the
	// shaper ends the span when the completion callback unwinds.
	tr *obs.Tracer
}

// SetTracer attaches the lifecycle tracer (shared with the shaper that
// drives this controller).
func (cc *CommController) SetTracer(t *obs.Tracer) { cc.tr = t }

type inflightReq struct {
	encrypt    bool
	dataLen    int
	dataBlocks int
	tagLen     int
	family     cryptocore.Family
	prio       int // QoS priority for the download-side crossbar grant
	cb         func([]byte, error)

	// Upload bookkeeping: remaining counts core streams still being
	// written; wordBufs holds their pooled word staging buffers until the
	// upload completes; onWrite is the prebuilt per-stream completion.
	cc        *CommController
	reqID     int
	remaining int
	wordBufs  [2][]uint32
	onWrite   func()

	// span is the packet's trace span, claimed from the shaper at submit
	// (obs.NoSpan when untraced).
	span obs.SpanRef

	next *inflightReq // pool link
}

// ErrAuth mirrors modes.ErrAuth for the device path.
var ErrAuth = modes.ErrAuth

// nopErr absorbs protocol acknowledgements nobody waits on.
var nopErr = func(error) {}

// NewCommController wires a controller to the device's interrupt line.
func NewCommController(dev *core.MCCP) *CommController {
	cc := &CommController{
		dev:      dev,
		inflight: make(map[int]*inflightReq),
		suites:   make(map[int]core.Suite),
	}
	dev.OnDataAvailable = cc.drain
	cc.onRetrieve = cc.retrieved
	cc.onWords = cc.assembleAndFinish
	cc.onTD = cc.transferDone
	return cc
}

func (cc *CommController) getReq() *inflightReq {
	req := cc.freeReq
	if req == nil {
		req = &inflightReq{cc: cc}
		req.onWrite = req.streamWritten
		return req
	}
	cc.freeReq = req.next
	req.next = nil
	return req
}

func (cc *CommController) putReq(req *inflightReq) {
	req.cb = nil
	req.span = obs.NoSpan
	req.next = cc.freeReq
	cc.freeReq = req
}

// streamWritten fires when one core stream's upload transfer completes;
// the last one recycles the word buffers and acknowledges the upload.
func (req *inflightReq) streamWritten() {
	req.remaining--
	if req.remaining > 0 {
		return
	}
	for i, w := range req.wordBufs {
		if w != nil {
			bufpool.PutWords(w)
			req.wordBufs[i] = nil
		}
	}
	req.cc.tr.MarkNow(req.span, obs.MarkUpload)
	req.cc.dev.TransferDone(req.reqID, nopErr)
}

// OpenChannel opens an MCCP channel and remembers its suite for packet
// formatting.
func (cc *CommController) OpenChannel(s core.Suite, keyID int, cb func(ch int, err error)) {
	cc.dev.Open(s, keyID, func(ch int, err error) {
		if err == nil {
			cc.suites[ch] = s
		}
		cb(ch, err)
	})
}

// CloseChannel closes an MCCP channel.
func (cc *CommController) CloseChannel(ch int, cb func(error)) {
	cc.dev.Close(ch, func(err error) {
		if err == nil {
			delete(cc.suites, ch)
		}
		cb(err)
	})
}

// Encrypt protects one packet on channel ch. cb receives ciphertext||tag
// (GCM/CCM), the transformed data (CTR) or the MAC (CBC-MAC). nonce is the
// 12-byte GCM IV, the 13-byte CCM nonce, the full 16-byte initial counter
// block for CTR, and unused for CBC-MAC.
func (cc *CommController) Encrypt(ch int, nonce, aad, payload []byte, cb func([]byte, error)) {
	cc.submit(ch, true, nonce, aad, payload, nil, cb)
}

// Decrypt verifies and recovers one packet. For GCM/CCM, ct and tag are
// the ciphertext and the received tag; cb receives the plaintext or ErrAuth.
func (cc *CommController) Decrypt(ch int, nonce, aad, ct, tag []byte, cb func([]byte, error)) {
	cc.submit(ch, false, nonce, aad, ct, tag, cb)
}

func (cc *CommController) submit(ch int, encrypt bool, nonce, aad, payload, tag []byte, cb func([]byte, error)) {
	// Claim the span the shaper parked before invoking us — at the very
	// top, so an early error return can never leave a stale reference for
	// the next submission to pick up. Errors surface through cb and are
	// ended by the layer that started the span.
	span := cc.tr.TakePending()
	s, ok := cc.suites[ch]
	if !ok {
		cb(nil, fmt.Errorf("radio: channel %d not open on this controller", ch))
		return
	}
	cc.dev.Submit(ch, encrypt, len(aad), len(payload), func(a core.Assignment, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		cc.tr.MarkNow(span, obs.MarkAssign)
		streams, nstreams, err := cc.streamsFor(a, s, encrypt, nonce, aad, payload, tag)
		if err != nil {
			cb(nil, err)
			return
		}
		req := cc.getReq()
		req.encrypt = encrypt
		req.dataLen = len(payload)
		req.dataBlocks = int(a.Tasks[len(a.Tasks)-1].DataBlocks)
		req.tagLen = s.TagLen
		req.family = s.Family
		req.prio = s.Priority
		req.cb = cb
		req.reqID = a.ReqID
		req.remaining = nstreams
		req.span = span
		cc.inflight[a.ReqID] = req
		// Stream every engaged core's input through the Cross Bar at the
		// channel's QoS priority, then acknowledge the upload with the
		// first TRANSFER_DONE. Each stream's staged blocks are recycled as
		// soon as they are converted to words; the word buffers when the
		// upload completes.
		if nstreams == 0 {
			cc.tr.MarkNow(span, obs.MarkUpload)
			cc.dev.TransferDone(a.ReqID, nopErr)
			return
		}
		for i := 0; i < nstreams; i++ {
			words := blocksToWords(streams[i])
			bufpool.PutBlocks(streams[i])
			req.wordBufs[i] = words
			cc.dev.WriteToCorePrio(a.CoreIDs[i], words, s.Priority, req.onWrite)
		}
	})
}

// streamsFor builds each engaged core's input FIFO stream for the
// scheduler's chosen mapping. The returned streams are pooled block
// buffers owned by the caller.
func (cc *CommController) streamsFor(a core.Assignment, s core.Suite, encrypt bool, nonce, aad, payload, tag []byte) (streams [2][]bits.Block, n int, err error) {
	one := func(f Frame, e error) ([2][]bits.Block, int, error) {
		return [2][]bits.Block{f.In}, 1, e
	}
	switch a.Tasks[0].Mode {
	case firmware.ModeGCMEnc:
		f, err := FrameGCMEnc(nonce, aad, payload)
		return one(f, err)
	case firmware.ModeGCMDec:
		f, err := FrameGCMDec(nonce, aad, payload, tag)
		return one(f, err)
	case firmware.ModeCCMEnc:
		f, err := FrameCCMEnc(nonce, aad, payload, s.TagLen)
		return one(f, err)
	case firmware.ModeCCMDec:
		f, err := FrameCCMDec(nonce, aad, payload, tag, s.TagLen)
		return one(f, err)
	case firmware.ModeCCM2MacEnc, firmware.ModeCCM2MacDec:
		mac, ctr, err := FrameCCM2(encrypt, nonce, aad, payload, tag, s.TagLen)
		return [2][]bits.Block{mac.In, ctr.In}, 2, err
	case firmware.ModeCTR:
		var icb bits.Block
		if len(nonce) != 16 {
			return streams, 0, fmt.Errorf("radio: CTR needs a 16-byte initial counter block")
		}
		copy(icb[:], nonce)
		f, err := FrameCTR(icb, payload)
		return one(f, err)
	case firmware.ModeCBCMAC:
		if len(payload)%16 != 0 {
			return streams, 0, fmt.Errorf("radio: CBC-MAC needs whole blocks")
		}
		f, err := FrameCBCMAC(bits.AppendPadBlocks(bufpool.Blocks(len(payload)/16), payload))
		return one(f, err)
	case firmware.ModeHash:
		// payload already carries Whirlpool padding (see Hash).
		nb := blockCount(len(payload))
		return one(Frame{In: bits.AppendPadBlocks(bufpool.Blocks(nb), payload)}, nil)
	}
	return streams, 0, fmt.Errorf("radio: cannot format mode %v", a.Tasks[0].Mode)
}

// Hash digests msg on a Whirlpool-reconfigured channel, delivering the
// 512-bit digest. The controller applies the Whirlpool padding before
// streaming, exactly as it formats block-cipher packets.
func (cc *CommController) Hash(ch int, msg []byte, cb func([]byte, error)) {
	padded := whirlpool.PadMessage(msg)
	cc.submit(ch, true, nil, nil, padded, nil, cb)
}

// drain services the Data Available interrupt: retrieve, read, release,
// deliver — and loop while more results wait.
func (cc *CommController) drain() {
	if cc.draining {
		return
	}
	cc.draining = true
	cc.drainOne()
}

func (cc *CommController) drainOne() {
	if !cc.dev.DataAvailable() {
		cc.draining = false
		return
	}
	cc.dev.RetrieveData(cc.onRetrieve)
}

// retrieved handles one RETRIEVE_DATA result (prebuilt as onRetrieve).
func (cc *CommController) retrieved(r core.Retrieval, err error) {
	if err != nil {
		cc.draining = false
		return
	}
	req := cc.inflight[r.ReqID]
	delete(cc.inflight, r.ReqID)
	cc.cur, cc.curR = req, r
	if req != nil {
		cc.tr.MarkNow(req.span, obs.MarkRetrieve)
	}
	if r.Code == firmware.ResultAuthFail {
		cc.finish(nil, ErrAuth)
		return
	}
	if r.OutWords == 0 {
		cc.finish(nil, nil)
		return
	}
	prio := 0
	if req != nil {
		prio = req.prio
	}
	cc.dev.ReadFromCorePrio(r.OutCore, r.OutWords, prio, cc.onWords)
}

// assembleAndFinish converts the drained output FIFO words (prebuilt as
// onWords).
func (cc *CommController) assembleAndFinish(words []uint32) {
	out := cc.assemble(cc.cur, words)
	bufpool.PutWords(words)
	cc.finish(out, nil)
}

func (cc *CommController) finish(out []byte, e error) {
	cc.pendOut, cc.pendErr = out, e
	cc.dev.TransferDone(cc.curR.ReqID, cc.onTD)
}

// transferDone delivers the completed packet and loops (prebuilt as onTD).
func (cc *CommController) transferDone(error) {
	cc.Completions++
	req, out, e := cc.cur, cc.pendOut, cc.pendErr
	cc.cur, cc.pendOut, cc.pendErr = nil, nil, nil
	if req != nil {
		cb := req.cb
		cc.putReq(req)
		cb(out, e)
	}
	cc.drainOne()
}

// assemble converts raw output FIFO words into the caller-visible bytes:
// truncating padded blocks to the true data length and the tag to the
// suite's tag length. The returned buffer is pooled (see the type
// comment); the raw staging buffer is recycled before returning.
func (cc *CommController) assemble(req *inflightReq, words []uint32) []byte {
	raw := bufpool.BytesN(4 * len(words))
	for i, w := range words {
		raw[4*i] = byte(w >> 24)
		raw[4*i+1] = byte(w >> 16)
		raw[4*i+2] = byte(w >> 8)
		raw[4*i+3] = byte(w)
	}
	var out []byte
	switch {
	case req == nil:
		out = append(bufpool.Bytes(len(raw)), raw...)
	case req.family == cryptocore.FamilyHash:
		out = append(bufpool.Bytes(whirlpool.DigestBytes), raw[:whirlpool.DigestBytes]...)
	case req.family == cryptocore.FamilyCBCMAC:
		out = append(bufpool.Bytes(16), raw[:16]...)
	case req.family == cryptocore.FamilyCTR:
		out = append(bufpool.Bytes(req.dataLen), raw[:req.dataLen]...)
	case req.encrypt:
		// [CT blocks][TAG block] -> ct || tag[:tagLen]
		ctEnd := 16 * req.dataBlocks
		out = append(bufpool.Bytes(req.dataLen+req.tagLen), raw[:req.dataLen]...)
		out = append(out, raw[ctEnd:ctEnd+req.tagLen]...)
	default:
		out = append(bufpool.Bytes(req.dataLen), raw[:req.dataLen]...)
	}
	bufpool.PutBytes(raw)
	return out
}

func blocksToWords(blocks []bits.Block) []uint32 {
	out := bufpool.Words(4 * len(blocks))
	for _, b := range blocks {
		w := b.Words()
		out = append(out, w[0], w[1], w[2], w[3])
	}
	return out
}
