package radio

import (
	"fmt"

	"mccp/internal/bits"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/firmware"
	"mccp/internal/modes"
	"mccp/internal/whirlpool"
)

// CommController is the platform's communication controller (paper §III.A):
// it owns the MCCP control port, formats packets per the mode-of-operation
// specifications, streams them through the Cross Bar, services the Data
// Available interrupt and reassembles results.
type CommController struct {
	dev *core.MCCP

	// inflight tracks requests between dispatch and retrieval.
	inflight map[int]*inflightReq
	suites   map[int]core.Suite // channel -> suite (for formatting)
	draining bool

	// Completions counts packets fully round-tripped.
	Completions uint64
}

type inflightReq struct {
	encrypt    bool
	dataLen    int
	dataBlocks int
	tagLen     int
	family     cryptocore.Family
	prio       int // QoS priority for the download-side crossbar grant
	cb         func([]byte, error)
}

// ErrAuth mirrors modes.ErrAuth for the device path.
var ErrAuth = modes.ErrAuth

// NewCommController wires a controller to the device's interrupt line.
func NewCommController(dev *core.MCCP) *CommController {
	cc := &CommController{
		dev:      dev,
		inflight: make(map[int]*inflightReq),
		suites:   make(map[int]core.Suite),
	}
	dev.OnDataAvailable = cc.drain
	return cc
}

// OpenChannel opens an MCCP channel and remembers its suite for packet
// formatting.
func (cc *CommController) OpenChannel(s core.Suite, keyID int, cb func(ch int, err error)) {
	cc.dev.Open(s, keyID, func(ch int, err error) {
		if err == nil {
			cc.suites[ch] = s
		}
		cb(ch, err)
	})
}

// CloseChannel closes an MCCP channel.
func (cc *CommController) CloseChannel(ch int, cb func(error)) {
	cc.dev.Close(ch, func(err error) {
		if err == nil {
			delete(cc.suites, ch)
		}
		cb(err)
	})
}

// Encrypt protects one packet on channel ch. cb receives ciphertext||tag
// (GCM/CCM), the transformed data (CTR) or the MAC (CBC-MAC). nonce is the
// 12-byte GCM IV, the 13-byte CCM nonce, the full 16-byte initial counter
// block for CTR, and unused for CBC-MAC.
func (cc *CommController) Encrypt(ch int, nonce, aad, payload []byte, cb func([]byte, error)) {
	cc.submit(ch, true, nonce, aad, payload, nil, cb)
}

// Decrypt verifies and recovers one packet. For GCM/CCM, ct and tag are
// the ciphertext and the received tag; cb receives the plaintext or ErrAuth.
func (cc *CommController) Decrypt(ch int, nonce, aad, ct, tag []byte, cb func([]byte, error)) {
	cc.submit(ch, false, nonce, aad, ct, tag, cb)
}

func (cc *CommController) submit(ch int, encrypt bool, nonce, aad, payload, tag []byte, cb func([]byte, error)) {
	s, ok := cc.suites[ch]
	if !ok {
		cb(nil, fmt.Errorf("radio: channel %d not open on this controller", ch))
		return
	}
	cc.dev.Submit(ch, encrypt, len(aad), len(payload), func(a core.Assignment, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		streams, err := cc.streamsFor(a, s, encrypt, nonce, aad, payload, tag)
		if err != nil {
			cb(nil, err)
			return
		}
		cc.inflight[a.ReqID] = &inflightReq{
			encrypt:    encrypt,
			dataLen:    len(payload),
			dataBlocks: int(a.Tasks[len(a.Tasks)-1].DataBlocks),
			tagLen:     s.TagLen,
			family:     s.Family,
			prio:       s.Priority,
			cb:         cb,
		}
		// Stream every engaged core's input through the Cross Bar at the
		// channel's QoS priority, then acknowledge the upload with the
		// first TRANSFER_DONE.
		remaining := len(streams)
		for i := range streams {
			words := blocksToWords(streams[i])
			coreID := a.CoreIDs[i]
			cc.dev.WriteToCorePrio(coreID, words, s.Priority, func() {
				remaining--
				if remaining == 0 {
					cc.dev.TransferDone(a.ReqID, func(error) {})
				}
			})
		}
		if len(streams) == 0 {
			cc.dev.TransferDone(a.ReqID, func(error) {})
		}
	})
}

// streamsFor builds each engaged core's input FIFO stream for the
// scheduler's chosen mapping.
func (cc *CommController) streamsFor(a core.Assignment, s core.Suite, encrypt bool, nonce, aad, payload, tag []byte) ([][]bits.Block, error) {
	switch a.Tasks[0].Mode {
	case firmware.ModeGCMEnc:
		f, err := FrameGCMEnc(nonce, aad, payload)
		return [][]bits.Block{f.In}, err
	case firmware.ModeGCMDec:
		f, err := FrameGCMDec(nonce, aad, payload, tag)
		return [][]bits.Block{f.In}, err
	case firmware.ModeCCMEnc:
		f, err := FrameCCMEnc(nonce, aad, payload, s.TagLen)
		return [][]bits.Block{f.In}, err
	case firmware.ModeCCMDec:
		f, err := FrameCCMDec(nonce, aad, payload, tag, s.TagLen)
		return [][]bits.Block{f.In}, err
	case firmware.ModeCCM2MacEnc, firmware.ModeCCM2MacDec:
		mac, ctr, err := FrameCCM2(encrypt, nonce, aad, payload, tag, s.TagLen)
		return [][]bits.Block{mac.In, ctr.In}, err
	case firmware.ModeCTR:
		var icb bits.Block
		if len(nonce) != 16 {
			return nil, fmt.Errorf("radio: CTR needs a 16-byte initial counter block")
		}
		copy(icb[:], nonce)
		f, err := FrameCTR(icb, payload)
		return [][]bits.Block{f.In}, err
	case firmware.ModeCBCMAC:
		if len(payload)%16 != 0 {
			return nil, fmt.Errorf("radio: CBC-MAC needs whole blocks")
		}
		f, err := FrameCBCMAC(bits.PadBlocks(payload))
		return [][]bits.Block{f.In}, err
	case firmware.ModeHash:
		// payload already carries Whirlpool padding (see Hash).
		return [][]bits.Block{bits.PadBlocks(payload)}, nil
	}
	return nil, fmt.Errorf("radio: cannot format mode %v", a.Tasks[0].Mode)
}

// Hash digests msg on a Whirlpool-reconfigured channel, delivering the
// 512-bit digest. The controller applies the Whirlpool padding before
// streaming, exactly as it formats block-cipher packets.
func (cc *CommController) Hash(ch int, msg []byte, cb func([]byte, error)) {
	padded := whirlpool.PadMessage(msg)
	cc.submit(ch, true, nil, nil, padded, nil, cb)
}

// drain services the Data Available interrupt: retrieve, read, release,
// deliver — and loop while more results wait.
func (cc *CommController) drain() {
	if cc.draining {
		return
	}
	cc.draining = true
	cc.drainOne()
}

func (cc *CommController) drainOne() {
	if !cc.dev.DataAvailable() {
		cc.draining = false
		return
	}
	cc.dev.RetrieveData(func(r core.Retrieval, err error) {
		if err != nil {
			cc.draining = false
			return
		}
		req := cc.inflight[r.ReqID]
		delete(cc.inflight, r.ReqID)
		finish := func(out []byte, e error) {
			cc.dev.TransferDone(r.ReqID, func(error) {
				cc.Completions++
				if req != nil {
					req.cb(out, e)
				}
				cc.drainOne()
			})
		}
		if r.Code == firmware.ResultAuthFail {
			finish(nil, ErrAuth)
			return
		}
		if r.OutWords == 0 {
			finish(nil, nil)
			return
		}
		prio := 0
		if req != nil {
			prio = req.prio
		}
		cc.dev.ReadFromCorePrio(r.OutCore, r.OutWords, prio, func(words []uint32) {
			finish(cc.assemble(req, words), nil)
		})
	})
}

// assemble converts raw output FIFO words into the caller-visible bytes:
// truncating padded blocks to the true data length and the tag to the
// suite's tag length.
func (cc *CommController) assemble(req *inflightReq, words []uint32) []byte {
	raw := make([]byte, 0, 4*len(words))
	for _, w := range words {
		raw = append(raw, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	if req == nil {
		return raw
	}
	switch {
	case req.family == cryptocore.FamilyHash:
		return raw[:whirlpool.DigestBytes]
	case req.family == cryptocore.FamilyCBCMAC:
		return raw[:16]
	case req.family == cryptocore.FamilyCTR:
		return raw[:req.dataLen]
	case req.encrypt:
		// [CT blocks][TAG block] -> ct || tag[:tagLen]
		ctEnd := 16 * req.dataBlocks
		out := append([]byte(nil), raw[:req.dataLen]...)
		return append(out, raw[ctEnd:ctEnd+req.tagLen]...)
	default:
		return raw[:req.dataLen]
	}
}

func blocksToWords(blocks []bits.Block) []uint32 {
	out := make([]uint32, 0, 4*len(blocks))
	for _, b := range blocks {
		w := b.Words()
		out = append(out, w[0], w[1], w[2], w[3])
	}
	return out
}
