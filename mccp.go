// Package mccp is the public API of the reconfigurable Multi-Core
// Crypto-Processor (MCCP) model — a cycle-calibrated reproduction of
// "A Reconfigurable Multi-core Cryptoprocessor for Multi-channel
// Communication Systems" (Grand et al., IPDPS 2011).
//
// A Platform bundles the simulated device (four Cryptographic Cores by
// default, Task Scheduler, Key Scheduler, Cross Bar) with the radio-side
// controllers the paper assumes (communication controller and main
// controller). Channels are opened with a cipher suite and a provisioned
// session key, then encrypt/decrypt packets with AES-GCM, AES-CCM (one- or
// two-core), CTR or CBC-MAC semantics — all executed by firmware on the
// simulated 8-bit core controllers, cycle-by-cycle, at a modeled 190 MHz.
//
//	p, _ := mccp.NewPlatform()
//	key, _ := p.NewKey(16)
//	ch, _ := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, key)
//	sealed, _ := ch.Encrypt(nonce, aad, payload)
//	plain, err := ch.Decrypt(nonce, aad, sealed[:len(payload)], sealed[len(payload):])
//
// The synchronous methods drive the discrete-event simulation internally;
// Cycles and Elapsed expose the virtual clock for performance studies.
package mccp

import (
	"fmt"

	"mccp/internal/cluster"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/faults"
	"mccp/internal/fleet"
	"mccp/internal/qos"
	"mccp/internal/radio"
	"mccp/internal/reconfig"
	"mccp/internal/scheduler"
	"mccp/internal/sim"
	"mccp/internal/verdict"
)

// Family selects a channel's mode of operation.
type Family = cryptocore.Family

// Supported families.
const (
	GCM    = cryptocore.FamilyGCM
	CCM    = cryptocore.FamilyCCM
	CTR    = cryptocore.FamilyCTR
	CBCMAC = cryptocore.FamilyCBCMAC
	Hash   = cryptocore.FamilyHash
)

// Suite configures a channel (re-exported from the device layer).
type Suite = core.Suite

// Policy selects the Task Scheduler dispatch policy. It is a typed name:
// string literals still convert implicitly at construction sites, but a
// Policy in an API signature documents the value set and routes through
// one validation (ParsePolicy / the constructors).
type Policy string

// The dispatch policies.
const (
	PolicyFirstIdle   Policy = "first-idle"
	PolicyRoundRobin  Policy = "round-robin"
	PolicyKeyAffinity Policy = "key-affinity"
	// PolicyQoSPriority reserves cores for high-priority (video/voice
	// class) channels: the §VIII quality-of-service dispatch policy.
	PolicyQoSPriority Policy = "qos-priority"
)

// Policies lists the selectable dispatch policies.
func Policies() []Policy {
	return []Policy{PolicyFirstIdle, PolicyRoundRobin, PolicyKeyAffinity, PolicyQoSPriority}
}

// ParsePolicy validates a user-supplied policy name (CLI flags, config
// files) against the scheduler registry. The empty string selects the
// default (first-idle, the paper's §III.C behaviour).
func ParsePolicy(name string) (Policy, error) {
	if _, err := scheduler.ByName(name); err != nil {
		return "", err
	}
	return Policy(name), nil
}

// Engine identifies a reconfigurable-region payload for Reconfigure.
type Engine = reconfig.Engine

// Reconfiguration targets and bitstream sources.
const (
	EngineAES       = reconfig.EngineAES
	EngineWhirlpool = reconfig.EngineWhirlpool
)

// Bitstream sources with the paper's measured bandwidths, plus the
// native-ICAP fast-source ceiling the paper points at for future work.
var (
	FromCompactFlash = reconfig.CompactFlash
	FromRAM          = reconfig.StagingRAM
	FromICAP         = reconfig.FastICAP
)

// ErrAuth is returned when an authenticated decryption fails; the device
// flushes the output FIFO so no unauthenticated plaintext is readable.
var ErrAuth = radio.ErrAuth

// ErrNoResources is the paper's error flag: no idle core and queueing
// disabled.
var ErrNoResources = core.ErrNoResources

// ErrQueueFull is the bounded-queue verdict: the device request queue hit
// Config.MaxQueue and shed the request (see Stats.Shed).
var ErrQueueFull = core.ErrQueueFull

// ErrShed is the QoS shaper's admission verdict: a class queue was full.
var ErrShed = qos.ErrShed

// ErrExpired is the QoS shaper's deadline verdict: the packet's deadline
// passed while it was still queued, so it was dropped at dispatch time.
var ErrExpired = qos.ErrExpired

// ErrAged is the QoS shaper's in-queue aging verdict: the packet sat in
// its class queue longer than the configured AgeLimit.
var ErrAged = qos.ErrAged

// Verdict is the typed classification of a packet outcome, shared by the
// whole stack: its numeric values index the cluster's per-verdict
// counters and equal the server wire protocol's status codes, so there
// is exactly one mapping from error to counter to wire status. The
// sentinel errors above remain the values operations return (== and
// errors.Is keep working); Verdict is how they are classified.
type Verdict = verdict.Verdict

// The verdicts, in wire-protocol status order.
const (
	VerdictOK       = verdict.OK
	VerdictRejected = verdict.Rejected
	VerdictShed     = verdict.Shed
	VerdictExpired  = verdict.Expired
	VerdictAged     = verdict.Aged
	VerdictAuthFail = verdict.AuthFail
	VerdictFailed   = verdict.Failed
)

// VerdictFor classifies an operation's returned error: nil is VerdictOK,
// ErrNoResources VerdictRejected, ErrShed and ErrQueueFull VerdictShed,
// ErrExpired VerdictExpired, ErrAged VerdictAged, ErrAuth
// VerdictAuthFail, anything else VerdictFailed.
func VerdictFor(err error) Verdict { return verdict.For(err) }

// Config sizes a Platform.
type Config struct {
	// Cores is the number of Cryptographic Cores (default 4, as in the
	// paper's implementation).
	Cores int
	// Policy selects the dispatch policy (default PolicyFirstIdle, the
	// paper's §III.C behaviour).
	Policy Policy
	// QueueRequests enables the §VIII QoS extension: saturating requests
	// wait in a priority queue instead of drawing the error flag.
	QueueRequests bool
	// MaxQueue bounds the request queue when QueueRequests is on
	// (0 = unbounded); overflow is shed with ErrQueueFull.
	MaxQueue int
	// Seed drives deterministic session-key generation.
	Seed uint64
}

// Platform is a simulated radio: the MCCP plus its surrounding controllers.
type Platform struct {
	// Eng is the discrete-event engine (190 MHz virtual clock).
	Eng *sim.Engine
	// Dev is the MCCP device; exported for instrumentation and advanced
	// (asynchronous) protocol use.
	Dev *core.MCCP
	// CC and MC are the communication and main controllers.
	CC *radio.CommController
	MC *radio.MainController

	rc *reconfig.Controller
}

// Options collects every knob the constructors accept. Use the With*
// functional options rather than filling this struct directly; it is
// exported so callers can inspect what an option set resolves to.
type Options struct {
	// Device scope (NewPlatform, and each shard under NewFleet).
	Cores         int
	Policy        Policy
	QueueRequests bool
	MaxQueue      int
	Seed          uint64

	// Fleet scope (NewFleet only; NewPlatform rejects them).
	Shards int
	Router string
	Shape  bool
	Shaper ShaperConfig
}

// Option configures NewPlatform or NewFleet.
type Option func(*Options)

// WithCores sets the Cryptographic Core count (per shard under NewFleet;
// default 4, the paper's implementation).
func WithCores(n int) Option { return func(o *Options) { o.Cores = n } }

// WithPolicy selects the dispatch policy (validated at construction).
func WithPolicy(p Policy) Option { return func(o *Options) { o.Policy = p } }

// WithQueueing enables the §VIII QoS extension: saturating requests wait
// in a priority queue instead of drawing the paper's error flag. max
// bounds the queue (0 = unbounded; overflow is shed with a Shed verdict).
func WithQueueing(max int) Option {
	return func(o *Options) { o.QueueRequests, o.MaxQueue = true, max }
}

// WithSeed drives deterministic session-key generation.
func WithSeed(seed uint64) Option { return func(o *Options) { o.Seed = seed } }

// WithShards sets the fleet's shard-pool size (NewFleet only).
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// WithRouter selects the fleet's session-routing policy by name
// (NewFleet only; see the Router* constants).
func WithRouter(name string) Option { return func(o *Options) { o.Router = name } }

// WithShaping gives every shard a QoS shaper between the batch pump and
// the device (NewFleet only): per-class queues, drain policy, admission
// control and virtual-time latency percentiles.
func WithShaping(cfg ShaperConfig) Option {
	return func(o *Options) { o.Shape, o.Shaper = true, cfg }
}

func resolve(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// NewPlatform builds a single-device Platform. It is the validating
// constructor: an unknown policy or a fleet-scope option is an error,
// never a panic or a misconfigured platform.
func NewPlatform(opts ...Option) (*Platform, error) {
	o := resolve(opts)
	if o.Shards != 0 || o.Router != "" || o.Shape {
		return nil, fmt.Errorf("mccp: fleet-scope option on NewPlatform (use NewFleet)")
	}
	return newPlatform(Config{
		Cores:         o.Cores,
		Policy:        o.Policy,
		QueueRequests: o.QueueRequests,
		MaxQueue:      o.MaxQueue,
		Seed:          o.Seed,
	})
}

func newPlatform(cfg Config) (*Platform, error) {
	pol, err := scheduler.ByName(string(cfg.Policy))
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	dev := core.New(eng, core.Config{
		Cores:         cfg.Cores,
		Policy:        pol,
		QueueRequests: cfg.QueueRequests,
		MaxQueue:      cfg.MaxQueue,
	})
	p := &Platform{
		Eng: eng,
		Dev: dev,
		CC:  radio.NewCommController(dev),
		MC:  radio.NewMainController(dev, cfg.Seed^0xD1CE),
		rc:  reconfig.NewController(eng, dev),
	}
	eng.Run() // settle core firmware into its idle loop
	return p, nil
}

// New builds a Platform, panicking on an invalid Config.
//
// Deprecated: use NewPlatform, the validating functional-options
// constructor. New remains for existing callers.
func New(cfg Config) *Platform {
	p, err := newPlatform(cfg)
	if err != nil {
		panic(fmt.Sprintf("mccp: %v", err))
	}
	return p
}

// NewChecked builds a Platform, returning an error on an invalid Config.
//
// Deprecated: use NewPlatform. NewChecked remains for existing callers.
func NewChecked(cfg Config) (*Platform, error) { return newPlatform(cfg) }

// Cycles returns the current virtual time in clock cycles.
func (p *Platform) Cycles() sim.Time { return p.Eng.Now() }

// Elapsed returns the virtual wall-clock time in seconds at 190 MHz.
func (p *Platform) Elapsed() float64 { return p.Eng.CyclesToSeconds(p.Eng.Now()) }

// NewKey generates and provisions a session key (16, 24 or 32 bytes) and
// returns its key ID. Key bytes never cross the MCCP data port.
func (p *Platform) NewKey(keyLen int) (int, error) {
	id, _, err := p.MC.ProvisionKey(keyLen)
	return id, err
}

// Channel is an open MCCP channel.
type Channel struct {
	p  *Platform
	id int
	s  Suite
}

// Open opens a channel with the given suite and key.
func (p *Platform) Open(s Suite, keyID int) (*Channel, error) {
	var (
		ch   int
		oerr error
		done bool
	)
	p.CC.OpenChannel(s, keyID, func(c int, err error) {
		ch, oerr, done = c, err, true
	})
	p.Eng.Run()
	if !done {
		return nil, fmt.Errorf("mccp: OPEN did not complete")
	}
	if oerr != nil {
		return nil, oerr
	}
	return &Channel{p: p, id: ch, s: s}, nil
}

// ID returns the device channel ID.
func (c *Channel) ID() int { return c.id }

// Close closes the channel.
func (c *Channel) Close() error {
	var cerr error
	c.p.CC.CloseChannel(c.id, func(err error) { cerr = err })
	c.p.Eng.Run()
	return cerr
}

// run drives one synchronous packet operation.
func (c *Channel) run(op func(cb func([]byte, error))) ([]byte, error) {
	var (
		out  []byte
		oerr error
		done bool
	)
	op(func(b []byte, err error) { out, oerr, done = b, err, true })
	c.p.Eng.Run()
	if !done {
		return nil, fmt.Errorf("mccp: operation did not complete (deadlock)")
	}
	return out, oerr
}

// Encrypt protects one packet, returning ciphertext||tag for GCM/CCM, the
// keystream-XORed data for CTR, or the MAC for CBC-MAC. Nonce sizes: GCM
// 12 bytes, CCM 13 bytes, CTR a 16-byte initial counter block.
func (c *Channel) Encrypt(nonce, aad, payload []byte) ([]byte, error) {
	return c.run(func(cb func([]byte, error)) { c.p.CC.Encrypt(c.id, nonce, aad, payload, cb) })
}

// Decrypt verifies and recovers one packet; ErrAuth on tag mismatch.
func (c *Channel) Decrypt(nonce, aad, ct, tag []byte) ([]byte, error) {
	return c.run(func(cb func([]byte, error)) { c.p.CC.Decrypt(c.id, nonce, aad, ct, tag, cb) })
}

// Sum hashes msg on a Whirlpool channel (after Reconfigure), returning the
// 512-bit digest.
func (c *Channel) Sum(msg []byte) ([]byte, error) {
	return c.run(func(cb func([]byte, error)) { c.p.CC.Hash(c.id, msg, cb) })
}

// EncryptAsync submits a packet without draining the simulation; pair with
// Run for pipelined multi-packet studies.
func (c *Channel) EncryptAsync(nonce, aad, payload []byte, cb func([]byte, error)) {
	c.p.CC.Encrypt(c.id, nonce, aad, payload, cb)
}

// DecryptAsync is the asynchronous variant of Decrypt.
func (c *Channel) DecryptAsync(nonce, aad, ct, tag []byte, cb func([]byte, error)) {
	c.p.CC.Decrypt(c.id, nonce, aad, ct, tag, cb)
}

// Run drains all pending simulation events (completes every async packet).
func (p *Platform) Run() { p.Eng.Run() }

// Reconfigure rewrites a core's reconfigurable region with the target
// engine, streaming the partial bitstream from the given source. The other
// cores keep processing during the swap.
func (p *Platform) Reconfigure(coreID int, target Engine, src reconfig.Source) (sim.Time, error) {
	var (
		took sim.Time
		rerr error
	)
	p.rc.Reconfigure(coreID, target, src, func(d sim.Time, err error) { took, rerr = d, err })
	p.Eng.Run()
	return took, rerr
}

// Stats is a device-level counter snapshot. Saturation splits into three
// disjoint outcomes: Rejected (the paper's error flag, queueing off),
// Queued (waited in the QoS queue) and Shed (dropped at the bounded
// queue) — internal/cluster reports the same three per shard.
type Stats struct {
	Packets       uint64
	AuthFails     uint64
	Rejected      uint64
	Queued        uint64
	Shed          uint64
	KeyExpansions uint64
	CrossbarBusy  sim.Time
}

// Cluster is the sharded multi-MCCP service layer: N independent
// Platforms run concurrently (one goroutine and one simulation engine
// each) behind a routing, batching and metrics front end. See
// internal/cluster for the full documentation.
type Cluster = cluster.Cluster

// ClusterConfig sizes a Cluster.
type ClusterConfig = cluster.Config

// ClusterSession is a cluster-level channel, homed on one shard and
// transparently re-homed by Rebalance.
type ClusterSession = cluster.Session

// ClusterOpenSpec parameterizes Cluster.Open.
type ClusterOpenSpec = cluster.OpenSpec

// ClusterMetrics is the aggregated cluster snapshot.
type ClusterMetrics = cluster.Metrics

// Cluster routing policies.
const (
	RouterHashByKey      = cluster.RouterHashByKey
	RouterLeastLoaded    = cluster.RouterLeastLoaded
	RouterFamilyAffinity = cluster.RouterFamilyAffinity
	// RouterQoSAware spreads high-priority sessions across shards and
	// steers bulk traffic away from them.
	RouterQoSAware = cluster.RouterQoSAware
)

// NewCluster builds and starts a sharded cluster. Close it to stop the
// shard goroutines.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// ErrShardDown is the verdict every packet lost to a crashed shard
// gets: queued work at the moment the injected crash fires and every
// later submission (classified VerdictFailed).
var ErrShardDown = cluster.ErrShardDown

// RehomeReport summarizes a crash fail-over: the failed shard, the
// sessions re-opened on survivors (voice first), the sessions no
// survivor could serve, and the virtual re-home latency.
type RehomeReport = cluster.RehomeReport

// FaultKind is a fault-schedule event type.
type FaultKind = faults.Kind

// The fault kinds: a permanent shard crash (frozen heartbeat, fail-over
// required), a transient shard stall (recovers on its own, must not be
// quarantined), and session open/close churn at a window boundary.
const (
	FaultShardCrash   = faults.ShardCrash
	FaultShardStall   = faults.ShardStall
	FaultSessionChurn = faults.SessionChurn
)

// FaultEvent is one scheduled fault; FaultSchedule a seeded, sorted
// event list the injectors replay deterministically in virtual time.
type (
	FaultEvent    = faults.Event
	FaultSchedule = faults.Schedule
)

// FaultPlanConfig parameterizes PlanFaults.
type FaultPlanConfig = faults.PlanConfig

// PlanFaults draws a deterministic fault schedule from the config's
// seed: distinct crash victims (at least one shard always survives),
// mid-window fire offsets, stalls on survivors, per-window churn.
func PlanFaults(cfg FaultPlanConfig) (FaultSchedule, error) { return faults.Plan(cfg) }

// BrownoutDeny computes the degradation mask for an offered load above
// the serving capacity: classes are shed background→data→video in
// order, and voice is never denied. The zero mask restores admission.
func BrownoutDeny(offeredMbps, capacityMbps float64, share [qos.NumClasses]float64) [qos.NumClasses]bool {
	return faults.BrownoutDeny(offeredMbps, capacityMbps, share)
}

// Fleet is the elastic control plane over a Cluster: rolling per-shard
// algorithm swaps (drain voice-first, rewrite the reconfigurable region
// while the remaining shards keep serving, re-admit) and load-driven
// scale-out/scale-in. See internal/fleet for the full documentation.
type Fleet = fleet.Fleet

// FleetSwapReport describes one shard's leg of a rolling swap.
type FleetSwapReport = fleet.SwapReport

// FleetScaleReport describes one Fleet.Scale call.
type FleetScaleReport = fleet.ScaleReport

// Autoscaler is the hysteresis fleet-size controller: feed it one
// offered-load observation per control interval and apply the returned
// target with Fleet.Scale.
type Autoscaler = fleet.Autoscaler

// AutoscalerConfig tunes the autoscaler's watermarks and damping.
type AutoscalerConfig = fleet.AutoscalerConfig

// NewAutoscaler builds an autoscaler starting at active shards.
func NewAutoscaler(cfg AutoscalerConfig, active int) (*Autoscaler, error) {
	return fleet.NewAutoscaler(cfg, active)
}

// NewFleet builds a sharded cluster and binds the elastic control plane
// to it, through the same validating option set as NewPlatform. Close
// the fleet's Cluster to stop the shard goroutines:
//
//	f, _ := mccp.NewFleet(mccp.WithShards(4), mccp.WithPolicy(mccp.PolicyQoSPriority))
//	defer f.Cluster().Close()
func NewFleet(opts ...Option) (*Fleet, error) {
	o := resolve(opts)
	if _, err := scheduler.ByName(string(o.Policy)); err != nil {
		return nil, err
	}
	cl, err := cluster.New(cluster.Config{
		Shards:        o.Shards,
		CoresPerShard: o.Cores,
		Router:        o.Router,
		Policy:        string(o.Policy),
		QueueRequests: o.QueueRequests,
		MaxQueue:      o.MaxQueue,
		Seed:          o.Seed,
		Shape:         o.Shape,
		Shaper:        o.Shaper,
	})
	if err != nil {
		return nil, err
	}
	return fleet.New(cl), nil
}

// Stats snapshots device counters.
func (p *Platform) Stats() Stats {
	return Stats{
		Packets:       p.CC.Completions,
		AuthFails:     p.Dev.Stats.AuthFails,
		Rejected:      p.Dev.Stats.Rejected,
		Queued:        p.Dev.Stats.Queued,
		Shed:          p.Dev.Stats.Shed,
		KeyExpansions: p.Dev.KeySched.Expansions,
		CrossbarBusy:  p.Dev.XBar.BusyCycles,
	}
}

// QoSClass is a traffic priority class for the QoS subsystem (voice,
// video, data, background); its numeric value is the Suite.Priority tag.
type QoSClass = qos.Class

// The four QoS classes, and the class count.
const (
	QoSBackground = qos.Background
	QoSData       = qos.Data
	QoSVideo      = qos.Video
	QoSVoice      = qos.Voice
	QoSNumClasses = qos.NumClasses
)

// QoS shaper drain-policy names.
const (
	QoSDrainStrict       = qos.DrainStrict
	QoSDrainWeightedFair = qos.DrainWeightedFair
	// QoSDrainDRRBytes drains by deficit round robin over payload bytes,
	// so the configured ratio holds on the wire even with mixed packet
	// sizes (256 B voice frames vs 2 KB bulk).
	QoSDrainDRRBytes = qos.DrainDRRBytes
)

// QoSWeights is the per-class service ratio for the weighted drains,
// indexed by QoSClass.
type QoSWeights = qos.Weights

// Shaper is the QoS front end over a Platform: per-class bounded FIFO
// queues, strict-priority or weighted-fair drain, admission control with
// load-shedding counters, deadline tags and per-class latency
// percentiles. See internal/qos for the full documentation.
type Shaper = qos.Shaper

// ShaperConfig sizes a Shaper.
type ShaperConfig = qos.Config

// QoSClassStats is a per-class shaper counter snapshot.
type QoSClassStats = qos.ClassStats

// NewShaper layers a QoS shaper over the platform's communication
// controller. Packets submitted through the shaper are classed, queued,
// admission-controlled and latency-tracked; pair with PolicyQoSPriority
// (and per-channel Suite.Priority tags) for end-to-end prioritization.
func (p *Platform) NewShaper(cfg ShaperConfig) *Shaper {
	return qos.NewShaper(p.Eng, p.CC, cfg)
}
