package mccp_test

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	"testing"

	"mccp"
	"mccp/internal/whirlpool"
)

func TestPublicAPIQuickstart(t *testing.T) {
	p := mccp.New(mccp.Config{})
	key, err := p.NewKey(16)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 12)
	payload := []byte("hello, software-defined radio")
	sealed, err := ch.Encrypt(nonce, []byte("hdr"), payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != len(payload)+16 {
		t.Fatalf("sealed length %d", len(sealed))
	}
	plain, err := ch.Decrypt(nonce, []byte("hdr"), sealed[:len(payload)], sealed[len(payload):])
	if err != nil || !bytes.Equal(plain, payload) {
		t.Fatalf("roundtrip: %v", err)
	}
	// Tamper -> ErrAuth.
	bad := append([]byte(nil), sealed...)
	bad[0] ^= 1
	if _, err := ch.Decrypt(nonce, []byte("hdr"), bad[:len(payload)], bad[len(payload):]); err != mccp.ErrAuth {
		t.Fatalf("tamper err = %v", err)
	}
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Packets < 2 {
		t.Error("stats did not count packets")
	}
	if p.Cycles() == 0 || p.Elapsed() <= 0 {
		t.Error("virtual clock did not advance")
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	for _, pol := range []string{mccp.PolicyFirstIdle, mccp.PolicyRoundRobin, mccp.PolicyKeyAffinity} {
		p := mccp.New(mccp.Config{Policy: pol, QueueRequests: true})
		key, _ := p.NewKey(32)
		ch, err := p.Open(mccp.Suite{Family: mccp.CCM, TagLen: 8, SplitCCM: true}, key)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		nonce := make([]byte, 13)
		sealed, err := ch.Encrypt(nonce, nil, make([]byte, 300))
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if _, err := ch.Decrypt(nonce, nil, sealed[:300], sealed[300:]); err != nil {
			t.Fatalf("%s decrypt: %v", pol, err)
		}
	}
}

func TestPublicAPIAsyncPipeline(t *testing.T) {
	p := mccp.New(mccp.Config{QueueRequests: true})
	key, _ := p.NewKey(16)
	ch, err := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 12)
	keyBytesCheck, _ := stdaes.NewCipher(make([]byte, 16))
	_ = keyBytesCheck
	done := 0
	for i := 0; i < 8; i++ {
		ch.EncryptAsync(nonce, nil, make([]byte, 512), func(_ []byte, err error) {
			if err != nil {
				t.Errorf("async packet: %v", err)
			}
			done++
		})
	}
	p.Run()
	if done != 8 {
		t.Fatalf("done = %d", done)
	}
}

func TestPublicAPIReconfigureAndHash(t *testing.T) {
	p := mccp.New(mccp.Config{})
	if _, err := p.Reconfigure(2, mccp.EngineWhirlpool, mccp.FromRAM); err != nil {
		t.Fatal(err)
	}
	ch, err := p.Open(mccp.Suite{Family: mccp.Hash}, 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("bitstream-swapped hashing service")
	digest, err := ch.Sum(msg)
	if err != nil {
		t.Fatal(err)
	}
	want := whirlpool.Sum(msg)
	if !bytes.Equal(digest, want[:]) {
		t.Fatalf("digest mismatch")
	}
}

// TestPublicAPIMatchesStdlibGCM pins the facade against crypto/cipher.
func TestPublicAPIMatchesStdlibGCM(t *testing.T) {
	p := mccp.New(mccp.Config{Seed: 42})
	keyID, err := p.NewKey(16)
	if err != nil {
		t.Fatal(err)
	}
	// Recover the generated key via a second deterministic controller run.
	p2 := mccp.New(mccp.Config{Seed: 42})
	_, key2, _ := p2.MC.ProvisionKey(16)

	ch, _ := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, keyID)
	nonce := []byte("abcdefghijkl")
	pt := []byte("cross-checking the whole stack against the standard library")
	sealed, err := ch.Encrypt(nonce, nil, pt)
	if err != nil {
		t.Fatal(err)
	}
	blk, _ := stdaes.NewCipher(key2)
	ref, _ := cipher.NewGCM(blk)
	if want := ref.Seal(nil, nonce, pt, nil); !bytes.Equal(sealed, want) {
		t.Fatalf("facade output != stdlib GCM")
	}
}
