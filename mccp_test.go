package mccp_test

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	"errors"
	"testing"

	"mccp"
	"mccp/internal/whirlpool"
)

func TestPublicAPIQuickstart(t *testing.T) {
	p := mccp.New(mccp.Config{})
	key, err := p.NewKey(16)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 12)
	payload := []byte("hello, software-defined radio")
	sealed, err := ch.Encrypt(nonce, []byte("hdr"), payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != len(payload)+16 {
		t.Fatalf("sealed length %d", len(sealed))
	}
	plain, err := ch.Decrypt(nonce, []byte("hdr"), sealed[:len(payload)], sealed[len(payload):])
	if err != nil || !bytes.Equal(plain, payload) {
		t.Fatalf("roundtrip: %v", err)
	}
	// Tamper -> ErrAuth.
	bad := append([]byte(nil), sealed...)
	bad[0] ^= 1
	if _, err := ch.Decrypt(nonce, []byte("hdr"), bad[:len(payload)], bad[len(payload):]); err != mccp.ErrAuth {
		t.Fatalf("tamper err = %v", err)
	}
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Packets < 2 {
		t.Error("stats did not count packets")
	}
	if p.Cycles() == 0 || p.Elapsed() <= 0 {
		t.Error("virtual clock did not advance")
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	for _, pol := range []mccp.Policy{mccp.PolicyFirstIdle, mccp.PolicyRoundRobin, mccp.PolicyKeyAffinity} {
		p := mccp.New(mccp.Config{Policy: pol, QueueRequests: true})
		key, _ := p.NewKey(32)
		ch, err := p.Open(mccp.Suite{Family: mccp.CCM, TagLen: 8, SplitCCM: true}, key)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		nonce := make([]byte, 13)
		sealed, err := ch.Encrypt(nonce, nil, make([]byte, 300))
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if _, err := ch.Decrypt(nonce, nil, sealed[:300], sealed[300:]); err != nil {
			t.Fatalf("%s decrypt: %v", pol, err)
		}
	}
}

func TestPublicAPIAsyncPipeline(t *testing.T) {
	p := mccp.New(mccp.Config{QueueRequests: true})
	key, _ := p.NewKey(16)
	ch, err := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 12)
	keyBytesCheck, _ := stdaes.NewCipher(make([]byte, 16))
	_ = keyBytesCheck
	done := 0
	for i := 0; i < 8; i++ {
		ch.EncryptAsync(nonce, nil, make([]byte, 512), func(_ []byte, err error) {
			if err != nil {
				t.Errorf("async packet: %v", err)
			}
			done++
		})
	}
	p.Run()
	if done != 8 {
		t.Fatalf("done = %d", done)
	}
}

func TestPublicAPIReconfigureAndHash(t *testing.T) {
	p := mccp.New(mccp.Config{})
	if _, err := p.Reconfigure(2, mccp.EngineWhirlpool, mccp.FromRAM); err != nil {
		t.Fatal(err)
	}
	ch, err := p.Open(mccp.Suite{Family: mccp.Hash}, 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("bitstream-swapped hashing service")
	digest, err := ch.Sum(msg)
	if err != nil {
		t.Fatal(err)
	}
	want := whirlpool.Sum(msg)
	if !bytes.Equal(digest, want[:]) {
		t.Fatalf("digest mismatch")
	}
}

// TestNewCheckedRejectsUnknownPolicy covers the validate-and-error
// constructor: user-supplied policy names must produce an error from
// NewChecked and a panic (not a misconfigured platform) from New.
func TestNewCheckedRejectsUnknownPolicy(t *testing.T) {
	if _, err := mccp.NewChecked(mccp.Config{Policy: "best-effort"}); err == nil {
		t.Fatal("NewChecked accepted an unknown policy")
	}
	if p, err := mccp.NewChecked(mccp.Config{Policy: mccp.PolicyRoundRobin}); err != nil || p == nil {
		t.Fatalf("NewChecked rejected a valid policy: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on an unknown policy")
		}
	}()
	mccp.New(mccp.Config{Policy: "best-effort"})
}

// saturate fires more async packets than the device has cores and returns
// the outcome counts.
func saturate(t *testing.T, policy mccp.Policy, queue bool) (ok, rejected int, stats mccp.Stats) {
	t.Helper()
	p := mccp.New(mccp.Config{Policy: policy, QueueRequests: queue})
	key, err := p.NewKey(16)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 12)
	const packets = 12 // 3x the core count: guaranteed saturation
	for i := 0; i < packets; i++ {
		ch.EncryptAsync(nonce, nil, make([]byte, 256), func(_ []byte, err error) {
			switch err {
			case nil:
				ok++
			case mccp.ErrNoResources:
				rejected++
			default:
				t.Errorf("%s queue=%v: %v", policy, queue, err)
			}
		})
	}
	p.Run()
	if ok+rejected != packets {
		t.Fatalf("%s queue=%v: %d outcomes for %d packets", policy, queue, ok+rejected, packets)
	}
	return ok, rejected, p.Stats()
}

// TestSchedulerPoliciesUnderSaturation exercises round-robin and
// key-affinity end-to-end at saturation, with the QoS queueing extension
// on and off — asserting the paper's error-flag behaviour (Rejected) and
// the §VIII queueing counters (Queued) through the public API.
func TestSchedulerPoliciesUnderSaturation(t *testing.T) {
	for _, policy := range []mccp.Policy{mccp.PolicyRoundRobin, mccp.PolicyKeyAffinity} {
		t.Run(string(policy)+"/queue=off", func(t *testing.T) {
			ok, rejected, stats := saturate(t, policy, false)
			if rejected == 0 || stats.Rejected == 0 {
				t.Fatalf("no error-flag rejects at saturation (ok=%d rej=%d stats=%+v)", ok, rejected, stats)
			}
			if uint64(rejected) != stats.Rejected {
				t.Fatalf("callback rejects %d != Stats.Rejected %d", rejected, stats.Rejected)
			}
			if stats.Queued != 0 {
				t.Fatalf("Queued=%d with queueing disabled", stats.Queued)
			}
		})
		t.Run(string(policy)+"/queue=on", func(t *testing.T) {
			ok, rejected, stats := saturate(t, policy, true)
			if rejected != 0 || stats.Rejected != 0 {
				t.Fatalf("rejects with queueing enabled (rej=%d stats=%+v)", rejected, stats)
			}
			if ok != 12 {
				t.Fatalf("only %d/12 packets completed", ok)
			}
			if stats.Queued == 0 {
				t.Fatal("saturating load never used the QoS queue")
			}
		})
	}
}

// TestPublicAPICluster smoke-tests the sharded service layer through the
// public facade.
func TestPublicAPICluster(t *testing.T) {
	cl, err := mccp.NewCluster(mccp.ClusterConfig{Shards: 2, Router: mccp.RouterLeastLoaded, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	a, err := cl.Open(mccp.ClusterOpenSpec{Suite: mccp.Suite{Family: mccp.GCM, TagLen: 16}, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.Open(mccp.ClusterOpenSpec{Suite: mccp.Suite{Family: mccp.CCM, TagLen: 8}, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if a.Shard() == b.Shard() {
		t.Fatalf("least-loaded left both sessions on shard %d", a.Shard())
	}
	nonce12, nonce13 := make([]byte, 12), make([]byte, 13)
	payload := []byte("served by the shard layer")
	s1, err := a.Encrypt(nonce12, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Encrypt(nonce13, nil, payload); err != nil {
		t.Fatal(err)
	}
	plain, err := a.Decrypt(nonce12, nil, s1[:len(payload)], s1[len(payload):])
	if err != nil || !bytes.Equal(plain, payload) {
		t.Fatalf("cluster roundtrip: %v", err)
	}
	m := cl.Metrics()
	if m.Packets != 3 || len(m.Shards) != 2 {
		t.Fatalf("metrics: %+v", m)
	}
	if _, err := mccp.NewCluster(mccp.ClusterConfig{Router: "nope"}); err == nil {
		t.Fatal("NewCluster accepted an unknown router")
	}
}

// TestPublicAPIMatchesStdlibGCM pins the facade against crypto/cipher.
func TestPublicAPIMatchesStdlibGCM(t *testing.T) {
	p := mccp.New(mccp.Config{Seed: 42})
	keyID, err := p.NewKey(16)
	if err != nil {
		t.Fatal(err)
	}
	// Recover the generated key via a second deterministic controller run.
	p2 := mccp.New(mccp.Config{Seed: 42})
	_, key2, _ := p2.MC.ProvisionKey(16)

	ch, _ := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, keyID)
	nonce := []byte("abcdefghijkl")
	pt := []byte("cross-checking the whole stack against the standard library")
	sealed, err := ch.Encrypt(nonce, nil, pt)
	if err != nil {
		t.Fatal(err)
	}
	blk, _ := stdaes.NewCipher(key2)
	ref, _ := cipher.NewGCM(blk)
	if want := ref.Seal(nil, nonce, pt, nil); !bytes.Equal(sealed, want) {
		t.Fatalf("facade output != stdlib GCM")
	}
}

// TestPublicAPIQoS drives the full QoS stack through the public surface:
// a qos-priority platform, per-channel class tags, the shaper front end
// with a bounded background queue, and the three-way saturation counters.
func TestPublicAPIQoS(t *testing.T) {
	p := mccp.New(mccp.Config{Policy: mccp.PolicyQoSPriority, QueueRequests: true})
	voiceKey, _ := p.NewKey(16)
	bulkKey, _ := p.NewKey(16)
	voice, err := p.Open(mccp.Suite{Family: mccp.CCM, TagLen: 8, Priority: mccp.QoSVoice.Priority()}, voiceKey)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16, Priority: mccp.QoSBackground.Priority()}, bulkKey)
	if err != nil {
		t.Fatal(err)
	}

	shaper := p.NewShaper(mccp.ShaperConfig{
		Capacity:   4,
		QueueDepth: 4,
		Drain:      mccp.QoSDrainWeightedFair,
	})
	voiceNonce := make([]byte, 13)
	bulkNonce := make([]byte, 12)
	voiceDone, bulkDone, shed := 0, 0, 0
	for i := 0; i < 6; i++ {
		shaper.Encrypt(mccp.QoSVoice, voice.ID(), voiceNonce, nil, make([]byte, 128),
			func(_ []byte, err error) {
				if err != nil {
					t.Errorf("voice: %v", err)
				}
				voiceDone++
			})
	}
	for i := 0; i < 8; i++ {
		shaper.Encrypt(mccp.QoSBackground, bulk.ID(), bulkNonce, nil, make([]byte, 1024),
			func(_ []byte, err error) {
				switch err {
				case nil:
					bulkDone++
				case mccp.ErrShed:
					shed++
				default:
					t.Errorf("bulk: %v", err)
				}
			})
	}
	p.Run()
	if voiceDone != 6 {
		t.Fatalf("voice completed %d/6", voiceDone)
	}
	if shed == 0 || bulkDone == 0 {
		t.Fatalf("bounded bulk queue: done=%d shed=%d, want both nonzero", bulkDone, shed)
	}
	vs := shaper.Stats(mccp.QoSVoice)
	if vs.Completed != 6 || shaper.LatencyPercentile(mccp.QoSVoice, 99) == 0 {
		t.Fatalf("voice shaper stats: %+v", vs)
	}
	if bs := shaper.Stats(mccp.QoSBackground); bs.Shed != uint64(shed) {
		t.Fatalf("shed counter %d != callbacks %d", bs.Shed, shed)
	}
}

// TestPublicAPIBoundedDeviceQueue covers Config.MaxQueue end-to-end: the
// device queues up to the bound, sheds the rest with ErrQueueFull, and
// Stats separates the outcomes.
func TestPublicAPIBoundedDeviceQueue(t *testing.T) {
	p := mccp.New(mccp.Config{QueueRequests: true, MaxQueue: 2})
	key, _ := p.NewKey(16)
	ch, err := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 12)
	ok, shed := 0, 0
	for i := 0; i < 12; i++ {
		ch.EncryptAsync(nonce, nil, make([]byte, 256), func(_ []byte, err error) {
			switch err {
			case nil:
				ok++
			case mccp.ErrQueueFull:
				shed++
			default:
				t.Errorf("packet: %v", err)
			}
		})
	}
	p.Run()
	stats := p.Stats()
	if shed == 0 || uint64(shed) != stats.Shed {
		t.Fatalf("shed=%d stats=%+v", shed, stats)
	}
	if stats.Rejected != 0 {
		t.Fatalf("Rejected=%d with queueing on", stats.Rejected)
	}
	if ok+shed != 12 {
		t.Fatalf("outcomes %d+%d != 12", ok, shed)
	}
}

// TestNewPlatformOptions covers the validating functional-options
// constructor: options resolve, unknown policies error, and fleet-scope
// options are rejected at platform scope.
func TestNewPlatformOptions(t *testing.T) {
	p, err := mccp.NewPlatform(
		mccp.WithPolicy(mccp.PolicyQoSPriority),
		mccp.WithQueueing(0),
		mccp.WithSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := p.NewKey(16)
	ch, err := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Encrypt(make([]byte, 12), nil, []byte("options")); err != nil {
		t.Fatal(err)
	}
	if _, err := mccp.NewPlatform(mccp.WithPolicy("best-effort")); err == nil {
		t.Fatal("NewPlatform accepted an unknown policy")
	}
	if _, err := mccp.NewPlatform(mccp.WithShards(2)); err == nil {
		t.Fatal("NewPlatform accepted a fleet-scope option")
	}
}

// TestNewFleetElasticOps drives the fleet control plane through the
// public facade: scale-in/out and a single-shard algorithm swap.
func TestNewFleetElasticOps(t *testing.T) {
	f, err := mccp.NewFleet(
		mccp.WithShards(2),
		mccp.WithRouter(mccp.RouterLeastLoaded),
		mccp.WithQueueing(0),
		mccp.WithSeed(9),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Cluster().Close()
	if f.Active() != 2 {
		t.Fatalf("active = %d", f.Active())
	}
	ses, err := f.Cluster().Open(mccp.ClusterOpenSpec{
		Suite: mccp.Suite{Family: mccp.GCM, TagLen: 16}, KeyLen: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Scale(1); err != nil || f.Active() != 1 {
		t.Fatalf("scale-in: %v, active %d", err, f.Active())
	}
	if _, err := f.Scale(2); err != nil || f.Active() != 2 {
		t.Fatalf("scale-out: %v, active %d", err, f.Active())
	}
	took, _, err := f.Reconfigure(0, 0, mccp.EngineWhirlpool, mccp.FromICAP)
	if err != nil || took == 0 {
		t.Fatalf("swap: %v took %d", err, took)
	}
	if _, err := ses.Encrypt(make([]byte, 12), nil, []byte("post-swap")); err != nil {
		t.Fatal(err)
	}
	if _, err := mccp.NewFleet(mccp.WithPolicy("best-effort")); err == nil {
		t.Fatal("NewFleet accepted an unknown policy")
	}
}

// TestVerdictClassification pins the single error-to-verdict table and
// its errors.Is round trip through the canonical sentinels.
func TestVerdictClassification(t *testing.T) {
	cases := map[mccp.Verdict]error{
		mccp.VerdictOK:       nil,
		mccp.VerdictRejected: mccp.ErrNoResources,
		mccp.VerdictShed:     mccp.ErrShed,
		mccp.VerdictExpired:  mccp.ErrExpired,
		mccp.VerdictAged:     mccp.ErrAged,
		mccp.VerdictAuthFail: mccp.ErrAuth,
	}
	for v, sentinel := range cases {
		if got := mccp.VerdictFor(sentinel); got != v {
			t.Errorf("VerdictFor(%v) = %v, want %v", sentinel, got, v)
		}
		if !errors.Is(v.Err(), sentinel) && !(v == mccp.VerdictOK && v.Err() == nil) {
			t.Errorf("verdict %v round trip lost the sentinel", v)
		}
	}
	if mccp.VerdictFor(mccp.ErrQueueFull) != mccp.VerdictShed {
		t.Error("bounded-queue overflow must classify as shed")
	}
	if mccp.VerdictFor(errors.New("boom")) != mccp.VerdictFailed {
		t.Error("unknown errors must classify as failed")
	}
	if _, err := mccp.ParsePolicy("qos-priority"); err != nil {
		t.Errorf("ParsePolicy rejected a valid name: %v", err)
	}
	if _, err := mccp.ParsePolicy("best-effort"); err == nil {
		t.Error("ParsePolicy accepted an unknown name")
	}
}
