// Root benchmark suite: one bench per table / figure / quantitative result
// of the paper's evaluation (§VII). Each benchmark drives the full
// simulated MCCP and reports paper-aligned custom metrics (Mbps at the
// modeled 190 MHz, cycles per block, milliseconds per reconfiguration)
// alongside the usual ns/op of the simulation itself.
//
// Experiment index (see DESIGN.md / EXPERIMENTS.md):
//
//	E1 BenchmarkLoopTimes_*        loop-cycle formulas of §VII.A
//	E2 BenchmarkTable2_*           Table II throughput cells
//	E3 BenchmarkTable3_*           Table III comparison (ours + baselines)
//	E4 BenchmarkTable4_*           Table IV partial reconfiguration
//	E5 BenchmarkLatency_*          §VII.A latency-vs-throughput trade-off
//	E8 BenchmarkResources          §VII.A area/frequency result
//	E9 BenchmarkSchedPolicy_*      §VIII scheduling-policy extension
//	E10 BenchmarkAblation_*        design-choice ablations
//	E11 BenchmarkCluster           sharded multi-MCCP service-layer scaling
//	E12 BenchmarkQoS_*             §VIII QoS: overload retention + drains
package mccp_test

import (
	"fmt"
	"testing"
	"time"

	"mccp/internal/aes"
	"mccp/internal/baseline"
	"mccp/internal/bits"
	"mccp/internal/cluster"
	"mccp/internal/cryptocore"
	"mccp/internal/fpga"
	"mccp/internal/ghash"
	"mccp/internal/harness"
	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/reconfig"
	"mccp/internal/sim"
	"mccp/internal/trafficgen"
)

// benchThroughput measures one Table II cell per iteration. system_Mbps is
// the aggregate with all instances concurrently contending for the
// crossbar; paper_methodology_Mbps scales a single-instance run by the
// instance count, which is how Table II's NxM columns are built.
func benchThroughput(b *testing.B, fam cryptocore.Family, m harness.Mapping, keyBytes int) {
	b.Helper()
	b.ReportAllocs()
	var system float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		system = harness.MeasureThroughput(fam, m, keyBytes, harness.PacketBytes, 8*m.Streams)
	}
	wall := time.Since(start).Seconds()
	perInstance := system
	if m.Streams > 1 {
		single := harness.Mapping{Name: m.Name, Streams: 1, Split: m.Split}
		perInstance = harness.MeasureThroughput(fam, single, keyBytes, harness.PacketBytes, 8)
	}
	b.ReportMetric(system, "system_Mbps")
	b.ReportMetric(perInstance*float64(m.Streams), "paper_methodology_Mbps")
	if wall > 0 {
		// Wall-clock payload throughput of the simulator itself on this
		// host (nondeterministic, never gated — see benchfmt).
		payloadBits := float64(b.N) * float64(8*m.Streams) * harness.PacketBytes * 8
		b.ReportMetric(payloadBits/wall/1e6, "host_Mbps")
	}
}

// --- E2: Table II -----------------------------------------------------------

func BenchmarkTable2_GCM_1core_128(b *testing.B) {
	benchThroughput(b, cryptocore.FamilyGCM, harness.GCM1, 16)
}
func BenchmarkTable2_GCM_1core_192(b *testing.B) {
	benchThroughput(b, cryptocore.FamilyGCM, harness.GCM1, 24)
}
func BenchmarkTable2_GCM_1core_256(b *testing.B) {
	benchThroughput(b, cryptocore.FamilyGCM, harness.GCM1, 32)
}
func BenchmarkTable2_GCM_4x1_128(b *testing.B) {
	benchThroughput(b, cryptocore.FamilyGCM, harness.GCM4x1, 16)
}
func BenchmarkTable2_CCM_1core_128(b *testing.B) {
	benchThroughput(b, cryptocore.FamilyCCM, harness.CCM1, 16)
}
func BenchmarkTable2_CCM_1core_192(b *testing.B) {
	benchThroughput(b, cryptocore.FamilyCCM, harness.CCM1, 24)
}
func BenchmarkTable2_CCM_1core_256(b *testing.B) {
	benchThroughput(b, cryptocore.FamilyCCM, harness.CCM1, 32)
}
func BenchmarkTable2_CCM_2core_128(b *testing.B) {
	benchThroughput(b, cryptocore.FamilyCCM, harness.CCM2, 16)
}
func BenchmarkTable2_CCM_4x1_128(b *testing.B) {
	benchThroughput(b, cryptocore.FamilyCCM, harness.CCM4x1, 16)
}
func BenchmarkTable2_CCM_2x2_128(b *testing.B) {
	benchThroughput(b, cryptocore.FamilyCCM, harness.CCM2x2, 16)
}

// --- E1: loop-time formulas -------------------------------------------------

func benchLoop(b *testing.B, fam cryptocore.Family, split bool, want float64) {
	b.ReportAllocs()
	var rows []harness.LoopTimeRow
	for i := 0; i < b.N; i++ {
		rows = harness.MeasureLoopTimes()
	}
	for _, r := range rows {
		if r.PaperCycles == want {
			b.ReportMetric(r.MeasuredCycles, "cycles_per_block")
			b.ReportMetric(r.PaperCycles, "paper_cycles")
			return
		}
	}
}

func BenchmarkLoopTimes_GCM(b *testing.B)      { benchLoop(b, cryptocore.FamilyGCM, false, 49) }
func BenchmarkLoopTimes_CCM2core(b *testing.B) { benchLoop(b, cryptocore.FamilyCCM, true, 55) }
func BenchmarkLoopTimes_CCM1core(b *testing.B) { benchLoop(b, cryptocore.FamilyCCM, false, 104) }

// --- E3: Table III ----------------------------------------------------------

func BenchmarkTable3_ThisWork(b *testing.B) {
	b.ReportAllocs()
	var rows []harness.TableIIIRow
	for i := 0; i < b.N; i++ {
		rows = harness.OurTableIIIRows(8)
	}
	b.ReportMetric(rows[0].MbpsPerMHz, "GCM_Mbps_per_MHz")
	b.ReportMetric(rows[1].MbpsPerMHz, "CCM_Mbps_per_MHz")
	b.ReportMetric(float64(rows[0].Slices), "slices")
	b.ReportMetric(float64(rows[0].BRAMs), "brams")
}

func BenchmarkTable3_Baselines(b *testing.B) {
	b.ReportAllocs()
	var pipe, aziz, cm float64
	for i := 0; i < b.N; i++ {
		pipe = baseline.LemsitzerGCM.MbpsPerMHz(2048)
		aziz = baseline.AzizCCM.MbpsPerMHz()
		cm = baseline.CryptoManiac.MbpsPerMHz()
	}
	b.ReportMetric(pipe, "pipelined_GCM_Mbps_per_MHz")
	b.ReportMetric(aziz, "iterative_CCM_Mbps_per_MHz")
	b.ReportMetric(cm, "cryptomaniac_Mbps_per_MHz")
}

// --- E4: Table IV -----------------------------------------------------------

func BenchmarkTable4_Reconfiguration(b *testing.B) {
	b.ReportAllocs()
	var rows []reconfig.TableIVRow
	for i := 0; i < b.N; i++ {
		rows = reconfig.TableIV()
	}
	b.ReportMetric(rows[0].FromFlashMillis, "aes_flash_ms")
	b.ReportMetric(rows[0].FromRAMMillis, "aes_ram_ms")
	b.ReportMetric(rows[1].FromFlashMillis, "whirlpool_flash_ms")
	b.ReportMetric(rows[1].FromRAMMillis, "whirlpool_ram_ms")
	b.ReportMetric(rows[0].BitstreamKB, "aes_bitstream_kB")
	b.ReportMetric(rows[1].BitstreamKB, "whirlpool_bitstream_kB")
}

// --- E5: latency vs throughput ----------------------------------------------

func BenchmarkLatency_CCM_4x1_vs_2x2(b *testing.B) {
	b.ReportAllocs()
	var four, two harness.LatencyStats
	for i := 0; i < b.N; i++ {
		four = harness.MeasureLatency(harness.CCM4x1, 8)
		two = harness.MeasureLatency(harness.CCM2x2, 8)
	}
	b.ReportMetric(four.MeanLatencyCyc, "lat4x1_cycles")
	b.ReportMetric(two.MeanLatencyCyc, "lat2x2_cycles")
	b.ReportMetric(four.MeanLatencyCyc/two.MeanLatencyCyc, "latency_ratio")
}

// --- E8: resources ----------------------------------------------------------

func BenchmarkResources(b *testing.B) {
	b.ReportAllocs()
	var d *fpga.Design
	for i := 0; i < b.N; i++ {
		d = fpga.MCCPDesign(4)
	}
	b.ReportMetric(float64(d.Slices()), "slices")
	b.ReportMetric(float64(d.BRAMs()), "brams")
	b.ReportMetric(d.FmaxMHz(), "fmax_MHz")
}

// --- E9: scheduling policies (§VIII extension) ------------------------------

func BenchmarkSchedPolicy(b *testing.B) {
	b.ReportAllocs()
	for _, pol := range []string{"first-idle", "round-robin", "key-affinity"} {
		b.Run(pol, func(b *testing.B) {
			b.ReportAllocs()
			var res trafficgen.RunResult
			for i := 0; i < b.N; i++ {
				res = trafficgen.RunMixed(trafficgen.MixedConfig{
					Policy:     pol,
					Packets:    60,
					Channels:   6,
					Seed:       1,
					QueueDepth: true,
				})
			}
			b.ReportMetric(res.ThroughputMbps, "Mbps")
			b.ReportMetric(res.MeanLatency, "mean_latency_cycles")
			b.ReportMetric(float64(res.KeyExpansions), "key_expansions")
		})
	}
}

// --- E11: sharded cluster scaling -------------------------------------------

// BenchmarkCluster runs the mixed multi-standard workload through the
// sharded service layer at 1/2/4/8 shards — same packets, same mix, same
// seed — and reports the aggregate simulated throughput (total traffic
// over the slowest shard's virtual makespan) plus the host-side
// wall-clock figure. The acceptance bar is >= 3x aggregate Mbps from
// 1 shard to 4.
func BenchmarkCluster(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var res cluster.WorkloadResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cluster.RunWorkload(cluster.WorkloadConfig{
					Shards:        n,
					Router:        cluster.RouterLeastLoaded,
					QueueRequests: true,
					Packets:       256,
					Sessions:      16,
					Seed:          1,
					BatchWindow:   128,
					// Prefetched generation: identical packet bytes and
					// virtual-time results; generation overlaps shard
					// simulation in wall time.
					PrefetchDepth: 256,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Metrics.AggregateSimMbps, "aggregate_Mbps")
			b.ReportMetric(float64(res.Metrics.ClusterCycles), "cluster_cycles")
			b.ReportMetric(res.Metrics.HostMbps, "host_Mbps")
			b.ReportMetric(float64(res.Metrics.Packets), "packets")
		})
	}
}

// --- E12: QoS priority classes (§VIII extension) ----------------------------

// BenchmarkQoS_Overload runs the 4:1 overload mix (four 2KB background
// streams vs one 256B voice stream) under each dispatch policy and
// reports per-class Mbps, voice latency percentiles and the voice
// throughput retained relative to the uncontended baseline. All figures
// are virtual-time and deterministic per seed; the acceptance bar is
// >= 90% voice retention under qos-priority (first-idle stays far below).
func BenchmarkQoS_Overload(b *testing.B) {
	b.ReportAllocs()
	var res harness.QoSResult
	for i := 0; i < b.N; i++ {
		res = harness.QoSTable(24)
	}
	for _, s := range res.Scenarios {
		b.Run(s.Policy, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = s // measured above; subruns report the cells
			}
			v, bg := s.Cell(qos.Voice), s.Cell(qos.Background)
			// Reported per subrun: a parent with sub-benchmarks never
			// prints its own result line.
			b.ReportMetric(res.VoiceUncontendedMbps, "voice_alone_Mbps")
			b.ReportMetric(v.Mbps, "voice_Mbps")
			b.ReportMetric(bg.Mbps, "background_Mbps")
			b.ReportMetric(float64(v.P50), "voice_p50_cycles")
			b.ReportMetric(float64(v.P99), "voice_p99_cycles")
			b.ReportMetric(float64(v.DeadlineMisses), "voice_deadline_misses")
			b.ReportMetric(res.Retention(s.Policy), "voice_retention")
		})
	}
}

// BenchmarkQoS_Drains contrasts the shaper's strict-priority and
// weighted-fair drain policies under sustained voice load with a
// background burst behind a bounded class queue.
func BenchmarkQoS_Drains(b *testing.B) {
	b.ReportAllocs()
	var rows []harness.QoSDrainRow
	for i := 0; i < b.N; i++ {
		rows = harness.QoSDrainComparison(40)
	}
	for _, r := range rows {
		b.Run(r.Drain, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = r
			}
			b.ReportMetric(float64(r.VoiceP95), "voice_p95_cycles")
			b.ReportMetric(float64(r.BackgroundP95), "background_p95_cycles")
			b.ReportMetric(float64(r.BackgroundCompleted), "background_done")
			b.ReportMetric(float64(r.BackgroundShed), "background_shed")
		})
	}
}

// --- E13: open-loop load curves ---------------------------------------------

// BenchmarkLoadCurve runs the open-loop offered-load sweep at three
// points per policy and reports per-class loss and latency. Every metric
// is virtual-time and deterministic; voice_delivered_frac (the fraction
// of offered voice packets actually delivered) participates in the
// baseline regression gate — it must stay ~1.0 under qos-priority.
func BenchmarkLoadCurve(b *testing.B) {
	b.ReportAllocs()
	var res harness.LoadCurveResult
	for i := 0; i < b.N; i++ {
		res = harness.LoadCurve(harness.LoadCurveConfig{
			Offered:           []float64{0.5, 1.0, 2.0},
			BackgroundPackets: 200,
		})
	}
	for _, p := range res.Points {
		p := p
		b.Run(fmt.Sprintf("%s/offered=%.1f", p.Policy, p.Offered), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = p // measured above; subruns report the cells
			}
			v, bg := p.Cell(qos.Voice), p.Cell(qos.Background)
			b.ReportMetric(p.TotalOfferedMbps, "offered_Mbps")
			b.ReportMetric(p.TotalDeliveredMbps, "delivered_Mbps")
			b.ReportMetric(100*v.LossFrac, "voice_loss_pct")
			b.ReportMetric(100*bg.LossFrac, "background_loss_pct")
			b.ReportMetric(1-v.LossFrac, "voice_delivered_frac")
			b.ReportMetric(float64(v.P99), "voice_p99_cycles")
			b.ReportMetric(float64(bg.P99), "background_p99_cycles")
			b.ReportMetric(float64(v.Misses), "voice_deadline_misses")
		})
	}
}

// --- E14: wire-level latency curves -----------------------------------------

// BenchmarkWireLatency runs the loopback mccpserver in front of the
// cluster and replays the open-loop mix through the wire protocol at
// three offered points. wire_Mbps (delivered wire throughput) gates
// higher-is-better; voice_wire_p99_cycles gates lower-is-better — both
// are virtual-time figures, deterministic on the loopback transport with
// a single connection.
func BenchmarkWireLatency(b *testing.B) {
	b.ReportAllocs()
	cfg := harness.WireConfig{
		Sessions: 64,
		Offered:  []float64{0.5, 1.0, 2.0},
		Windows:  24,
	}
	var res harness.WireResult
	for i := 0; i < b.N; i++ {
		res = harness.WireLatency(cfg)
	}
	for _, p := range res.Points {
		p := p
		b.Run(fmt.Sprintf("offered=%.1f", p.Offered), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = p // measured above; subruns report the cells
			}
			v, bg := p.Cell(qos.Voice), p.Cell(qos.Background)
			b.ReportMetric(p.TotalOfferedMbps, "offered_Mbps")
			b.ReportMetric(p.WireMbps, "wire_Mbps")
			b.ReportMetric(float64(v.P99), "voice_wire_p99_cycles")
			b.ReportMetric(float64(bg.P99), "background_wire_p99_cycles")
			b.ReportMetric(100*v.LossFrac, "voice_loss_pct")
			b.ReportMetric(100*bg.LossFrac, "background_loss_pct")
			b.ReportMetric(float64(v.Shed), "voice_shed")
		})
	}
}

// --- E15: rolling reconfiguration under load --------------------------------

// BenchmarkReconfigUnderLoad runs the E15 fleet-agility measurement — a
// rolling Whirlpool swap across a two-shard cluster under a sustained
// open-loop stream — and reports what the serving shards delivered
// during the bitstream windows at each source speed and policy.
// voice_delivered_frac participates in the tight baseline gate (voice
// must ride out every swap); during_delivered_Mbps gates as throughput;
// voice_swap_p99_cycles is informational (not a wire metric).
func BenchmarkReconfigUnderLoad(b *testing.B) {
	b.ReportAllocs()
	var res harness.ReconfigLoadResult
	for i := 0; i < b.N; i++ {
		res = harness.ReconfigUnderLoad(harness.ReconfigLoadConfig{
			Shards:    2,
			TimeScale: 256,
		})
	}
	for _, run := range res.Runs {
		run := run
		b.Run(fmt.Sprintf("%s/src=%s", run.Policy, run.Source), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = run // measured above; subruns report the cells
			}
			v, bg := run.Cell(qos.Voice), run.Cell(qos.Background)
			b.ReportMetric(run.TrueWindowMillis, "window_ms")
			b.ReportMetric(run.BaselineDelivered, "baseline_delivered_Mbps")
			b.ReportMetric(run.DuringDelivered, "during_delivered_Mbps")
			b.ReportMetric(1-v.LossFrac, "voice_delivered_frac")
			b.ReportMetric(float64(v.P99), "voice_swap_p99_cycles")
			b.ReportMetric(100*bg.LossFrac, "background_loss_pct")
			b.ReportMetric(float64(run.Drained), "sessions_drained")
		})
	}
}

// --- E16: fault curves ------------------------------------------------------

// BenchmarkFaultCurves runs the E16 fault drill — crash count x churn
// rate at 0.9x saturation through the loopback server — and reports what
// each policy kept alive. voice_delivered_frac participates in the tight
// baseline gate (voice must ride out a single-shard crash under
// qos-priority); wire_Mbps gates as throughput and voice_wire_p99_cycles
// lower-is-better; the re-home/recovery figures are informational
// virtual-time cycle counts. The zero-fault row runs the same code path
// as E14, so its cells double as a wiring check against that baseline.
func BenchmarkFaultCurves(b *testing.B) {
	b.ReportAllocs()
	cfg := harness.FaultConfig{
		Wire: harness.WireConfig{
			Shards:       4,
			Sessions:     96,
			WindowCycles: 4096,
			Windows:      24,
		},
		FaultWindow: 8,
	}
	var res harness.FaultResult
	for i := 0; i < b.N; i++ {
		res = harness.FaultCurves(cfg)
	}
	for _, p := range res.Points {
		p := p
		b.Run(fmt.Sprintf("%s/crashes=%d_churn=%d", p.Policy, p.Row.Crashes, p.Row.Churn), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = p // measured above; subruns report the cells
			}
			v, bg := p.Cell(qos.Voice), p.Cell(qos.Background)
			recovered := 0.0
			if p.Recovered {
				recovered = 1
			}
			b.ReportMetric(p.TotalOfferedMbps, "offered_Mbps")
			b.ReportMetric(p.WireMbps, "wire_Mbps")
			b.ReportMetric(1-v.LossFrac, "voice_delivered_frac")
			b.ReportMetric(float64(v.P99), "voice_wire_p99_cycles")
			b.ReportMetric(100*bg.LossFrac, "background_loss_pct")
			b.ReportMetric(float64(p.Moved), "sessions_moved")
			b.ReportMetric(float64(p.Lost), "sessions_lost")
			b.ReportMetric(float64(p.RehomeTook), "rehome_cycles")
			b.ReportMetric(float64(p.RecoveryCycles), "recovery_cycles")
			b.ReportMetric(recovered, "recovered")
			b.ReportMetric(float64(p.Churned), "sessions_churned")
		})
	}
}

// --- E17: recovery curves ---------------------------------------------------

// BenchmarkRecoveryCurves runs the E17 recovery drill — one shard
// crashed at 0.9x saturation with the restart loop armed, swept over the
// paper's bitstream sources — and reports the climb back per source.
// voice_delivered_frac and brownout_lifted participate in the tight
// baseline gate (voice must ride through crash AND recovery, and the
// shed classes must all be re-admitted); restart/rejoin/capacity figures
// are informational virtual-time counts whose ordering mirrors Table IV:
// icap rejoins before ram before compact-flash.
func BenchmarkRecoveryCurves(b *testing.B) {
	b.ReportAllocs()
	cfg := harness.RecoveryConfig{
		Wire: harness.WireConfig{
			Shards:       4,
			Sessions:     96,
			WindowCycles: 4096,
			Windows:      24,
		},
		FaultWindow: 8,
		// Squeeze even the compact-flash reload into the short bench
		// horizon; source ordering is scale-invariant.
		TimeScale: 16384,
	}
	var res harness.RecoveryResult
	for i := 0; i < b.N; i++ {
		res = harness.RecoveryCurves(cfg)
	}
	for _, p := range res.Points {
		p := p
		b.Run(fmt.Sprintf("%s/source=%s", p.Policy, p.Source), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = p // measured above; subruns report the cells
			}
			v, bg := p.Cell(qos.Voice), p.Cell(qos.Background)
			lifted := 0.0
			if p.BrownoutLifted {
				lifted = 1
			}
			restored := 0.0
			if p.CapacityRestored {
				restored = 1
			}
			b.ReportMetric(p.TotalOfferedMbps, "offered_Mbps")
			b.ReportMetric(p.WireMbps, "wire_Mbps")
			b.ReportMetric(1-v.LossFrac, "voice_delivered_frac")
			b.ReportMetric(100*bg.LossFrac, "background_loss_pct")
			b.ReportMetric(float64(p.Moved), "sessions_moved")
			b.ReportMetric(float64(p.Lost), "sessions_lost")
			b.ReportMetric(float64(p.RestartCycles), "restart_cycles")
			b.ReportMetric(p.TrueRestartMillis, "restart_true_ms")
			b.ReportMetric(float64(p.RejoinWindow), "rejoin_window")
			b.ReportMetric(lifted, "brownout_lifted")
			b.ReportMetric(float64(p.CapacityCycles), "capacity_cycles")
			b.ReportMetric(restored, "capacity_restored")
		})
	}
}

// --- E18: stage attribution --------------------------------------------------

// BenchmarkStageAttribution runs the E18 traced decomposition at three
// offered points and reports where each class's p99 latency is spent.
// The tracer runs at sample rate 1, so the stage cycles are exact
// virtual-time figures and deterministic; delivered_Mbps gates as
// throughput and voice_p99_cycles as latency, same cells as E13 (the
// traced run reconciles bit-for-bit with the untraced one).
func BenchmarkStageAttribution(b *testing.B) {
	b.ReportAllocs()
	var res harness.StageCurveResult
	for i := 0; i < b.N; i++ {
		res = harness.StageAttribution(harness.StageCurveConfig{
			Offered: []float64{0.5, 1.0, 1.5},
			Load:    harness.LoadCurveConfig{BackgroundPackets: 200},
		})
	}
	for _, p := range res.Points {
		p := p
		b.Run(fmt.Sprintf("%s/offered=%.1f", p.Policy, p.Offered), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = p // measured above; subruns report the cells
			}
			v, bg := p.StageCell(qos.Voice), p.StageCell(qos.Background)
			b.ReportMetric(p.TotalDeliveredMbps, "delivered_Mbps")
			b.ReportMetric(float64(p.Spans), "spans_traced")
			b.ReportMetric(float64(v.TotalP99), "voice_p99_cycles")
			b.ReportMetric(float64(v.P99[obs.StageQueue]), "voice_queue_p99_cycles")
			b.ReportMetric(float64(v.P99[obs.StageCore]), "voice_core_p99_cycles")
			b.ReportMetric(float64(bg.TotalP99), "background_p99_cycles")
			b.ReportMetric(float64(bg.P99[obs.StageQueue]), "background_queue_p99_cycles")
		})
	}
}

// --- E10: ablations ---------------------------------------------------------

// BenchmarkAblation_GHashDigits sweeps the GHASH multiplier digit width:
// the paper picked 3 bits (43 cycles); the sweep shows where GHASH would
// start limiting the 49-cycle GCM loop.
func BenchmarkAblation_GHashDigits(b *testing.B) {
	b.ReportAllocs()
	for _, d := range []int{1, 2, 3, 4, 8} {
		b.Run(fmt.Sprintf("digits=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			cyc := ghash.DigitSerialCycles(d)
			limit := float64(cyc)
			loop := 49.0
			if limit > loop {
				loop = limit // GHASH becomes the loop bound
			}
			var x bits.Block
			h := bits.BlockFromHex("66e94bd4ef8a2c3b884cfa59ca342b2e")
			for i := 0; i < b.N; i++ {
				x = ghash.MulDigitSerial(x, h, d)
			}
			_ = x
			b.ReportMetric(float64(cyc), "mul_cycles")
			b.ReportMetric(128/loop*190, "gcm_Mbps_bound")
		})
	}
}

// BenchmarkAblation_KeySizes reproduces the key-size column structure of
// Table II from the AES core latency alone.
func BenchmarkAblation_KeySizes(b *testing.B) {
	b.ReportAllocs()
	for _, ks := range []aes.KeySize{aes.Key128, aes.Key192, aes.Key256} {
		b.Run(ks.String(), func(b *testing.B) {
			b.ReportAllocs()
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = harness.TheoreticalMbps(cryptocore.FamilyGCM, harness.GCM1, ks)
			}
			b.ReportMetric(mbps, "theoretical_Mbps")
			b.ReportMetric(float64(ks.CoreCycles()), "aes_cycles")
		})
	}
}

// --- Simulator self-benchmarks ----------------------------------------------

// BenchmarkSimulatorRate reports how fast the cycle simulation itself runs
// (simulated cycles per wall second), to size longer experiments.
func BenchmarkSimulatorRate(b *testing.B) {
	b.ReportAllocs()
	var cycles float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		// Two 2KB GCM packets end-to-end; recover the measured virtual
		// duration from the returned throughput figure.
		mbps := harness.MeasureThroughput(cryptocore.FamilyGCM, harness.GCM1, 16, 2048, 2)
		cycles += float64(2*2048*8) / (mbps * 1e6) * sim.DefaultFreqHz
	}
	wall := time.Since(start).Seconds()
	b.ReportMetric(cycles/float64(b.N), "cycles_per_iter")
	if wall > 0 {
		b.ReportMetric(cycles/wall/1e6, "sim_Mcycles_per_s")
	}
}
