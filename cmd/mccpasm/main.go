// mccpasm assembles PicoBlaze-style controller firmware and disassembles
// the images shipped in the repository.
//
// Usage:
//
//	mccpasm file.psm            # assemble, print listing
//	mccpasm -image aes          # disassemble the embedded AES-modes image
//	mccpasm -image hash         # disassemble the embedded hash image
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mccp/internal/firmware"
	"mccp/internal/obs"
	"mccp/internal/picoblaze"
)

func main() {
	image := flag.String("image", "", "disassemble an embedded image: aes or hash")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("mccpasm"))
		return
	}

	switch {
	case *image == "aes":
		list(firmware.ImageAES)
	case *image == "hash":
		list(firmware.ImageHash)
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		prog, err := picoblaze.Assemble(string(src))
		if err != nil {
			log.Fatal(err)
		}
		list(prog)
	default:
		fmt.Fprintln(os.Stderr, "usage: mccpasm [-image aes|hash] [file.psm]")
		os.Exit(2)
	}
}

func list(prog []picoblaze.Word) {
	for addr, w := range prog {
		fmt.Printf("%03X  %05X  %s\n", addr, uint32(w), picoblaze.Disassemble(w))
	}
	fmt.Fprintf(os.Stderr, "%d words of %d-word instruction memory\n",
		len(prog), picoblaze.IMemWords)
}
