// mccpserver fronts the MCCP cluster with the paper's §III.C control
// protocol over TCP: OPEN/CLOSE bind wire sessions to cluster sessions,
// ENCRYPT/DECRYPT carry packets, RETRIEVE_DATA reports wire statistics.
// Concurrent callers are coalesced into per-shard ring submissions by the
// request batcher (size or deadline trigger).
//
// Usage:
//
//	mccpserver -listen :9650 -shards 4 -policy qos-priority -shape
//	mccpserver -listen 127.0.0.1:0 -batch 128 -flush-every 200us
//	mccpserver -idle-timeout 30s -max-sessions 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mccp"
	"mccp/internal/cluster"
	"mccp/internal/fleet"
	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/reconfig"
	"mccp/internal/scheduler"
	"mccp/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9650", "TCP listen address")
	httpAddr := flag.String("http", "", "HTTP observability listen address (/metrics, /postmortems, /debug/pprof); empty = off")
	version := flag.Bool("version", false, "print version and exit")
	shards := flag.Int("shards", 4, "number of MCCP shards")
	cores := flag.Int("cores", 4, "cryptographic cores per shard")
	router := flag.String("router", cluster.RouterQoSAware,
		"session routing policy: "+strings.Join(cluster.RouterNames(), ", "))
	policy := flag.String("policy", "qos-priority",
		"per-shard dispatch policy: "+strings.Join(scheduler.Names(), ", "))
	drain := flag.String("drain", "", "per-shard shaper drain policy: "+strings.Join(qos.DrainNames(), ", "))
	shape := flag.Bool("shape", true, "give every shard a QoS shaper (class queues, deadline budgets)")
	capacity := flag.Int("capacity", 4, "shaper concurrency bound per shard")
	queueDepth := flag.Int("queue-depth", 16, "shaper class-queue depth per shard")
	batch := flag.Int("batch", 64, "requests coalesced before a batch flush (size trigger)")
	flushEvery := flag.Duration("flush-every", 200*time.Microsecond,
		"deadline trigger: flush a non-empty batch at least this often (0 = size/FLUSH only)")
	idleTimeout := flag.Duration("idle-timeout", 0, "reap connections idle this long (0 = never)")
	maxSessions := flag.Int("max-sessions", 0, "reject OPEN beyond this many live sessions (0 = unbounded)")
	seed := flag.Uint64("seed", 1, "deterministic cluster seed")
	active := flag.Int("active", 0, "serve on the first n shards only (0 = all): fleet scale-in before accepting connections")
	swap := flag.String("swap", "", "rolling Whirlpool swap across every shard at boot from this bitstream source (compact-flash, ram, icap)")
	openBurst := flag.Int("open-burst", 0, "OPEN-admission token bucket per connection: at most this many non-voice OPENs between FLUSH-window refills, overflow shed (0 = unbounded; voice is never shed by admission)")
	openRefill := flag.Int("open-refill", 0, "tokens returned to each connection's OPEN bucket at every FLUSH-window boundary (0 = refill to the full burst)")
	openCap := flag.Int("open-cap", 0, "global non-voice OPENs admitted per FLUSH window across all connections, overflow shed (0 = unbounded; voice exempt)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-drain bound on SIGTERM/SIGINT: stop accepting, wait up to this long for live connections to finish, then close (0 = close immediately)")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("mccpserver"))
		return
	}

	if _, err := cluster.RouterByName(*router); err != nil {
		log.Fatalf("-router: %v", err)
	}
	if _, err := mccp.ParsePolicy(*policy); err != nil {
		log.Fatalf("-policy: %v", err)
	}
	if *drain != "" {
		if _, err := qos.DrainByName(*drain); err != nil {
			log.Fatalf("-drain: %v", err)
		}
	}

	srv, err := server.New(server.Config{
		Cluster: cluster.Config{
			Shards:        *shards,
			CoresPerShard: *cores,
			Router:        *router,
			Policy:        *policy,
			QueueRequests: true,
			Shape:         *shape,
			Seed:          *seed,
			Shaper: qos.Config{
				Capacity:   *capacity,
				QueueDepth: *queueDepth,
				Drain:      *drain,
			},
		},
		BatchOps:      *batch,
		FlushInterval: *flushEvery,
		IdleTimeout:   *idleTimeout,
		MaxSessions:   *maxSessions,
		OpenBurst:     *openBurst,
		OpenRefill:    *openRefill,
		OpenWindowCap: *openCap,
	})
	if err != nil {
		log.Fatal(err)
	}
	obs.RegisterBuildInfo(srv.Metrics(), "mccpserver")

	// Boot-time fleet operations, applied before the listener opens so
	// they never race the request batcher (the cluster front end is
	// single-caller).
	if *active > 0 || *swap != "" {
		f := fleet.New(srv.Cluster())
		if *active > 0 {
			rep, err := f.Scale(*active)
			if err != nil {
				log.Fatalf("-active: %v", err)
			}
			log.Printf("serving on %d of %d shards (%d sessions re-homed)", rep.Active, *shards, rep.Moved)
		}
		if *swap != "" {
			src, err := reconfig.SourceByName(*swap)
			if err != nil {
				log.Fatalf("-swap: %v", err)
			}
			reports, err := f.RollingSwap(0, reconfig.EngineWhirlpool, src, nil)
			if err != nil {
				log.Fatalf("-swap: %v", err)
			}
			for _, rep := range reports {
				log.Printf("shard %d core 0 -> Whirlpool in %d cycles (%.0f ms)", rep.Shard, rep.Took, float64(rep.Took)/190e6*1e3)
			}
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mccpserver listening on %s: %d shards x %d cores, router %s, policy %s, batch %d",
		ln.Addr(), *shards, *cores, *router, *policy, *batch)
	srv.Serve(ln)

	// The observability endpoint shares the wire protocol's registry: the
	// same Prometheus text the STATS frame returns, plus the postmortem
	// report and net/http/pprof.
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("-http: %v", err)
		}
		log.Printf("observability endpoint on http://%s/metrics", hln.Addr())
		go func() {
			if err := http.Serve(hln, srv.Handler()); err != nil {
				log.Printf("http: %v", err)
			}
		}()
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, give live
	// connections up to -drain-timeout to finish, drain in-flight batches,
	// answer stragglers, then print the final cluster snapshot.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("%s: draining (up to %s) and shutting down", s, *drainTimeout)
	cl := srv.Cluster()
	if err := srv.Shutdown(*drainTimeout); err != nil {
		log.Printf("shutdown: %v", err)
	}
	obs.WriteReport(os.Stdout, cl.Snapshot(), srv.Metrics())
}
