// benchtables regenerates every table and quantitative result of the
// paper's evaluation section from the simulation model and prints it next
// to the paper's published values.
//
// Usage:
//
//	benchtables                 # all tables
//	benchtables -table 2        # Table II only
//	benchtables -table loops    # §VII.A loop formulas
//	benchtables -table 3|4|latency|resources|policy|cluster|qos
//	benchtables -packets 20     # measurement length per Table II cell
package main

import (
	"flag"
	"fmt"
	"os"

	"mccp/internal/baseline"
	"mccp/internal/fpga"
	"mccp/internal/harness"
	"mccp/internal/obs"
	"mccp/internal/reconfig"
	"mccp/internal/trafficgen"
)

// experimentTables maps -table names to harness experiment registry
// IDs, in print order.
var experimentTables = []struct{ name, id string }{
	{"qos", "E12"},
	{"loadcurve", "E13"},
	{"wire", "E14"},
	{"reconfig", "E15"},
	{"faults", "E16"},
	{"heal", "E17"},
	{"stages", "E18"},
}

func main() {
	table := flag.String("table", "all", "which table to regenerate: loops, 2, 3, 4, latency, resources, policy, cluster, qos, loadcurve, wire, reconfig, faults, heal, stages, all; 'sweep' (not in 'all') runs the scale-out sweep")
	packets := flag.Int("packets", 12, "packets per Table II measurement cell")
	sweepPackets := flag.Int("sweep-packets", 65536, "total packets for -table sweep (1000000 reproduces the million-packet sweep)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("benchtables"))
		return
	}

	run := func(name string) bool { return *table == "all" || *table == name }
	any := false

	if run("loops") {
		any = true
		fmt.Println("== E1: steady-state loop times (§VII.A formulas) ==")
		fmt.Printf("%-32s %10s %10s\n", "loop", "model", "paper")
		for _, r := range harness.MeasureLoopTimes() {
			fmt.Printf("%-32s %10.2f %10.0f\n", r.Name, r.MeasuredCycles, r.PaperCycles)
		}
		fmt.Println()
	}

	if run("2") {
		any = true
		fmt.Println("== E2: Table II — MCCP encryption throughput at 190 MHz ==")
		fmt.Print(harness.FormatTableII(harness.TableII(*packets)))
		fmt.Println("(\"2KB(model)\" follows the paper's methodology: single-instance")
		fmt.Println(" end-to-end throughput x instances; \"system\" adds crossbar and")
		fmt.Println(" protocol contention with all instances in flight.)")
		fmt.Println()
	}

	if run("3") {
		any = true
		fmt.Println("== E3: Table III — performance comparison ==")
		fmt.Printf("%-24s %-10s %-16s %-8s %10s %8s %8s %6s\n",
			"implementation", "platform", "programmable", "alg", "Mbps/MHz", "MHz", "slices", "BRAM")
		for _, r := range baseline.PublishedRows() {
			prog := "No"
			if r.Programmable {
				prog = "Yes"
			}
			slices := "-"
			if r.Slices > 0 {
				slices = fmt.Sprintf("%d", r.Slices)
			}
			brams := "-"
			if r.BRAMs > 0 {
				brams = fmt.Sprintf("(%d)", r.BRAMs)
			}
			fmt.Printf("%-24s %-10s %-16s %-8s %10.2f %8.0f %8s %6s\n",
				r.Implementation, r.Platform, prog, r.Algorithm, r.MbpsPerMHz, r.FreqMHz, slices, brams)
		}
		for _, r := range harness.OurTableIIIRows(*packets) {
			fmt.Printf("%-24s %-10s %-16s %-8s %10.2f %8.0f %8d %6s\n",
				r.Implementation, r.Platform, r.Programmable, r.Algorithm,
				r.MbpsPerMHz, r.FreqMHz, r.Slices, fmt.Sprintf("(%d)", r.BRAMs))
		}
		fmt.Printf("(paper's row: 9.91 / 4.43 Mbps/MHz, 190 MHz, 4084 slices (26))\n\n")
	}

	if run("4") {
		any = true
		fmt.Println("== E4: Table IV — partial reconfiguration ==")
		fmt.Printf("%-12s %8s %6s %14s %12s %10s\n",
			"core", "slices", "BRAM", "bitstream kB", "flash ms", "RAM ms")
		for _, r := range reconfig.TableIV() {
			fmt.Printf("%-12s %8d %6d %14.0f %12.0f %10.0f\n",
				r.Core, r.Slices, r.BRAMs, r.BitstreamKB, r.FromFlashMillis, r.FromRAMMillis)
		}
		fmt.Println("(paper: AES 351/4, 89 kB, 380/63 ms; Whirlpool 1153/4, 97 kB, 416/69 ms)")
		fmt.Println()
	}

	if run("latency") {
		any = true
		fmt.Println("== E5: CCM latency vs throughput (§VII.A trade-off) ==")
		four := harness.MeasureLatency(harness.CCM4x1, 3*4)
		two := harness.MeasureLatency(harness.CCM2x2, 3*2)
		fmt.Printf("%-10s %12s %16s %14s\n", "mapping", "Mbps", "mean lat (cyc)", "max lat (cyc)")
		for _, s := range []harness.LatencyStats{four, two} {
			fmt.Printf("%-10s %12.0f %16.0f %14d\n", s.Mapping, s.ThroughputMbps, s.MeanLatencyCyc, s.MaxLatencyCyc)
		}
		fmt.Printf("latency ratio 4x1/2x2 = %.2f (paper: 'almost two times greater')\n\n",
			four.MeanLatencyCyc/two.MeanLatencyCyc)
	}

	if run("resources") {
		any = true
		fmt.Println("== E8: resource result (§VII.A) ==")
		d := fpga.MCCPDesign(4)
		fmt.Printf("4-core MCCP: %d slices, %d BRAMs, Fmax %.0f MHz (paper: 4084 slices, 26 BRAMs, 190 MHz)\n",
			d.Slices(), d.BRAMs(), d.FmaxMHz())
		fmt.Printf("core-count sweep:")
		for n := 1; n <= 8; n++ {
			dn := fpga.MCCPDesign(n)
			fmt.Printf("  %d:%d", n, dn.Slices())
		}
		fmt.Println(" (slices)")
		fmt.Println()
	}

	if run("policy") {
		any = true
		fmt.Println("== E9: scheduling policies (§VIII extension) ==")
		fmt.Printf("%-14s %10s %14s %16s\n", "policy", "Mbps", "key expans.", "mean lat (cyc)")
		for _, pol := range []string{"first-idle", "round-robin", "key-affinity"} {
			r := trafficgen.RunMixed(trafficgen.MixedConfig{
				Policy: pol, Packets: 80, Channels: 6, Seed: 1, QueueDepth: true,
			})
			fmt.Printf("%-14s %10.0f %14d %16.0f\n", pol, r.ThroughputMbps, r.KeyExpansions, r.MeanLatency)
		}
		fmt.Println()
	}

	if run("cluster") {
		any = true
		fmt.Println("== E11: sharded cluster scaling (mixed workload, least-loaded router) ==")
		fmt.Print(harness.FormatClusterScaling(harness.ClusterScaling(16 * *packets)))
		fmt.Println("(aggregate simulated Mbps at 190 MHz; cluster cycles = slowest shard's")
		fmt.Println(" virtual makespan over the same total workload)")
		fmt.Println()
	}

	// The sweep is opt-in (not part of "all"): at a million packets it runs
	// minutes, not seconds.
	if *table == "sweep" {
		any = true
		n := *sweepPackets
		fmt.Printf("== E11b: scale-out sweep (%d packets, per-shard parallel generation) ==\n", n)
		fmt.Print(harness.FormatClusterScaling(harness.ClusterSweep(n)))
		fmt.Println("(per-session generators grouped per shard; a million packets is the")
		fmt.Println(" headline configuration — see -sweep-packets)")
		fmt.Println()
	}

	// The composite experiments come from the harness registry: the table
	// name selects an experiment ID, the registry owns the constructor,
	// headline, and interpretation notes.
	for _, sel := range experimentTables {
		if !run(sel.name) {
			continue
		}
		id := sel.id
		any = true
		exp := harness.Experiments[id]
		fmt.Printf("== %s: %s ==\n", exp.ID, exp.Title)
		fmt.Print(exp.Run(*packets))
		for _, note := range exp.Notes {
			fmt.Println(note)
		}
		fmt.Println()
	}

	if !any {
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
}
