// mccpcluster drives the sharded multi-MCCP service layer: N independent
// simulated devices behind one routing/batching front end, fed a mixed
// multi-standard workload from the deterministic traffic generator.
//
// Usage:
//
//	mccpcluster -shards 4 -router least-loaded -packets 256
//	mccpcluster -shards 2 -router family-affinity -whirlpool 1
//	mccpcluster -scaling                # 1 -> 2 -> 4 -> 8 shard sweep
//	mccpcluster -mix umts-voice,wimax-gcm -sessions 8 -policy key-affinity
//	mccpcluster -qos                    # QoS preset: qos-aware router,
//	                                    # qos-priority shards, all-class mix
//	mccpcluster -arrivals poisson -offered 1.2 -shards 4
//	                                    # open-loop arrivals into per-shard
//	                                    # shapers: per-class loss/latency
//	                                    # attributable per shard
//	mccpcluster -faults crashes=1 -offered 0.9
//	                                    # fault drill: a seeded schedule
//	                                    # crashes shards mid-window; the
//	                                    # detector quarantines, re-homes
//	                                    # voice-first and browns out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"mccp"
	"mccp/internal/arrivals"
	"mccp/internal/cluster"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/faults"
	"mccp/internal/fleet"
	"mccp/internal/harness"
	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/reconfig"
	"mccp/internal/scheduler"
	"mccp/internal/sim"
	"mccp/internal/trafficgen"
)

// withMetrics (the -metrics flag) appends the metrics-registry
// exposition to every mode's exit report.
var withMetrics bool

// exitReport prints the one cluster exit report every mode ends with:
// the snapshot text, plus the registry metrics when -metrics is set.
// Deduplicating the per-mode Snapshot().Format() prints behind the obs
// renderer keeps the CLI report and the server's /metrics endpoint on
// the same read path.
func exitReport(cl *cluster.Cluster) {
	var reg *obs.Registry
	if withMetrics {
		reg = obs.NewRegistry()
		cl.RegisterMetrics(reg)
		cl.ObserveClassLatencies(reg)
		obs.RegisterBuildInfo(reg, "mccpcluster")
	}
	obs.WriteReport(os.Stdout, cl.Snapshot(), reg)
}

func main() {
	shards := flag.Int("shards", 4, "number of MCCP shards")
	cores := flag.Int("cores", 4, "cryptographic cores per shard")
	router := flag.String("router", cluster.RouterLeastLoaded,
		"session routing policy: "+strings.Join(cluster.RouterNames(), ", "))
	policy := flag.String("policy", "first-idle",
		"per-shard dispatch policy: "+strings.Join(scheduler.Names(), ", "))
	packets := flag.Int("packets", 256, "total packets to push through")
	sessions := flag.Int("sessions", 0, "sessions cycled over the mix (0 = 4 per shard)")
	mix := flag.String("mix", "", "comma-separated standards (default full mix: "+
		strings.Join(trafficgen.StandardNames(), ", ")+")")
	batch := flag.Int("batch", 64, "operations coalesced per dispatch batch")
	window := flag.Int("window", 0, "packets in flight per shard (0 = 2x cores, or 1x with -queue=false; above the core count with -queue=false demonstrates error-flag rejects)")
	queue := flag.Bool("queue", true, "enable the QoS queueing extension on every shard")
	maxQueue := flag.Int("max-queue", 0, "bound each shard's request queue (0 = unbounded; overflow is shed)")
	qosPreset := flag.Bool("qos", false, "QoS preset: qos-aware router, qos-priority shard policy, all-class mix")
	seed := flag.Int64("seed", 1, "deterministic workload seed")
	scaling := flag.Bool("scaling", false, "sweep 1/2/4/8 shards over the same workload")
	sweep := flag.Bool("sweep", false, "scale-out mode: per-session generators grouped per shard so packet generation parallelizes (pair with -packets 1000000 for the million-packet sweep)")
	whirlpool := flag.Int("whirlpool", -1, "reconfigure one core of this shard to Whirlpool before the run")
	scaleTo := flag.Int("scale", 0, "fleet demo: scale the serving set to this many shards (drain voice-first, re-home, report)")
	rollingSrc := flag.String("rolling-swap", "", "fleet demo: rolling Whirlpool swap across every shard from this bitstream source (compact-flash, ram, icap)")
	arrivalsProc := flag.String("arrivals", "", "open-loop mode: arrival process ("+
		strings.Join(arrivals.Names(), ", ")+") feeding per-shard QoS shapers")
	offered := flag.Float64("offered", 1.0, "offered load per shard as a fraction of saturation (open-loop mode)")
	drain := flag.String("drain", "", "per-shard shaper drain policy: "+strings.Join(qos.DrainNames(), ", "))
	weightsFlag := flag.String("weights", "", "weighted-drain service ratio as voice,video,data,background (e.g. 8,4,2,1)")
	horizon := flag.Uint64("horizon", 1000000, "open-loop measurement window in cycles per shard")
	faultsSpec := flag.String("faults", "", "fault drill: schedule spec crashes=N[,stalls=N][,window=K] — seeded shard faults applied to an open-loop run (churn is the load generator's side: mccploadgen -churn)")
	windows := flag.Int("windows", 12, "measurement windows for the fault drill")
	heal := flag.Bool("heal", false, "self-healing drill: crash one shard under open-loop load, fail over and brown out, then restart it from -restart-src, rebalance voice-first back and lift the brownout (composes with -offered/-windows/-horizon/-seed)")
	restartSrc := flag.String("restart-src", "icap", "bitstream source for -heal restarts: compact-flash, ram, icap (icap is the only source whose full-shard reload fits a few default windows; ram needs ~49, compact-flash ~290)")
	flag.BoolVar(&withMetrics, "metrics", false, "append the metrics-registry exposition to the exit report")
	traceOut := flag.String("trace-out", "", "open-loop mode: write lifecycle spans to this file (CSV; JSONL with a .jsonl suffix)")
	traceSample := flag.Float64("trace-sample", 1, "fraction of packets traced by -trace-out (seeded, deterministic; 1 = all)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("mccpcluster"))
		return
	}

	// Validate-and-error instead of panicking deep in the stack: bad CLI
	// flags should read like flag mistakes, not crashes.
	if _, err := cluster.RouterByName(*router); err != nil {
		log.Fatalf("-router: %v", err)
	}
	if _, err := mccp.ParsePolicy(*policy); err != nil {
		log.Fatalf("-policy: %v", err)
	}
	var stds []trafficgen.Standard
	if *mix != "" {
		var err error
		stds, err = trafficgen.StandardsByName(strings.Split(*mix, ","))
		if err != nil {
			log.Fatalf("-mix: %v", err)
		}
	}
	if *qosPreset {
		// The preset only fills defaults: explicit flags win.
		if !flagSet("router") {
			*router = cluster.RouterQoSAware
		}
		if !flagSet("policy") {
			*policy = "qos-priority"
		}
		if len(stds) == 0 {
			stds = trafficgen.QoSMix
		}
	}
	if *drain != "" {
		if _, err := qos.DrainByName(*drain); err != nil {
			log.Fatalf("-drain: %v", err)
		}
	}
	weights, err := parseWeights(*weightsFlag)
	if err != nil {
		log.Fatalf("-weights: %v", err)
	}

	if *heal {
		src, err := reconfig.SourceByName(*restartSrc)
		if err != nil {
			log.Fatalf("-restart-src: %v", err)
		}
		runHeal(*shards, *cores, *router, *policy,
			*offered, *windows, sim.Time(*horizon), uint64(*seed), src)
		return
	}

	if *faultsSpec != "" {
		runFaults(*faultsSpec, *shards, *cores, *router, *policy,
			*offered, *windows, sim.Time(*horizon), uint64(*seed))
		return
	}

	if *arrivalsProc != "" {
		if _, err := arrivals.ByName(*arrivalsProc, 1); err != nil {
			log.Fatalf("-arrivals: %v", err)
		}
		runOpenLoop(*shards, *cores, *router, *policy, *arrivalsProc, *drain,
			weights, *offered, *horizon, uint64(*seed), *traceOut, *traceSample)
		return
	}

	cfg := cluster.WorkloadConfig{
		Shards:        *shards,
		CoresPerShard: *cores,
		Router:        *router,
		Policy:        *policy,
		QueueRequests: *queue,
		MaxQueue:      *maxQueue,
		Packets:       *packets,
		Sessions:      *sessions,
		Mix:           stds,
		Seed:          *seed,
		BatchWindow:   *batch,
		ShardWindow:   *window,
		PerShardGen:   *sweep,
	}
	if !*sweep {
		// Overlap generation with shard simulation; identical packet bytes
		// and virtual-time results either way.
		cfg.PrefetchDepth = 2 * max(*batch, 1)
	}

	if *scaling {
		rows, err := cluster.RunScaling([]int{1, 2, 4, 8}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard scaling, %d packets of the mixed workload (router %s):\n", *packets, *router)
		fmt.Printf("%-8s %14s %14s %10s %12s\n", "shards", "aggregate Mbps", "cluster cycles", "speedup", "host Mbps")
		for _, r := range rows {
			fmt.Printf("%-8d %14.0f %14d %9.2fx %12.0f\n",
				r.Shards, r.AggregateSimMbps, r.ClusterCycles, r.Speedup, r.HostMbps)
		}
		return
	}

	if *scaleTo > 0 || *rollingSrc != "" {
		runFleet(cfg, *scaleTo, *rollingSrc)
		return
	}

	if *whirlpool >= 0 {
		runWithReconfig(cfg, *whirlpool)
		return
	}

	res, err := cluster.RunWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d shards x %d cores, router %s, policy %s, %d packets:\n",
		len(res.Metrics.Shards), *cores, *router, *policy, *packets)
	obs.WriteReport(os.Stdout, res.Metrics, nil)
	for _, c := range qos.Classes() {
		if res.ClassPackets[c] > 0 {
			fmt.Printf("class %-11s %6d packets %10d bytes\n", c, res.ClassPackets[c], res.ClassBytes[c])
		}
	}
	fmt.Printf("per-shard output digests (determinism check): %x\n", res.ShardDigests)
	if res.Errors > 0 {
		fmt.Printf("failed packets (error flag or shed): %d\n", res.Errors)
	}
}

// parseWeights parses a voice,video,data,background ratio (display
// order) into the qos.Weights class indexing.
func parseWeights(s string) (qos.Weights, error) {
	var w qos.Weights
	if s == "" {
		return w, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != qos.NumClasses {
		return w, fmt.Errorf("want %d comma-separated weights (voice,video,data,background)", qos.NumClasses)
	}
	order := []qos.Class{qos.Voice, qos.Video, qos.Data, qos.Background}
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return w, fmt.Errorf("bad weight %q (want a positive integer)", p)
		}
		w[order[i]] = n
	}
	return w, nil
}

// runOpenLoop is the cluster open-loop mode: arrival sources on every
// shard's own engine feed its shaper at the configured offered rate, and
// the report shows per-class loss/latency attributable per shard.
func runOpenLoop(shards, cores int, router, policy, proc, drain string,
	weights qos.Weights, offered float64, horizon, seed uint64,
	traceOut string, traceSample float64) {
	sat := harness.SaturationMbps(harness.LoadMix, 8)
	if cores > 0 && cores != 4 {
		// The calibration runs on the paper's 4-core device; per-core
		// throughput is flat across the 4x1 mapping, so scale linearly to
		// keep the "fraction of saturation" axis honest for other sizes.
		sat *= float64(cores) / 4
	}
	res, err := cluster.RunOpenLoop(cluster.OpenLoopConfig{
		Shards:          shards,
		CoresPerShard:   cores,
		Router:          router,
		Policy:          policy,
		Process:         proc,
		Drain:           drain,
		Weights:         weights,
		Offered:         offered,
		SatMbpsPerShard: sat,
		Horizon:         sim.Time(horizon),
		Seed:            seed,
		Profiles:        harness.LoadMix,
		Trace: obs.TraceConfig{
			Enabled: traceOut != "",
			Sample:  traceSample,
			Seed:    seed,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open-loop %s arrivals, %d shards x %d cores, %.2fx of ~%.0f Mbps per shard, policy %s:\n",
		proc, shards, cores, offered, sat, policy)
	fmt.Printf("%-12s %10s %10s %8s %8s %8s %8s %10s %10s\n",
		"class", "off Mbps", "del Mbps", "loss%", "shed", "expired", "aged", "p50 cyc", "p99 cyc")
	for _, c := range res.Classes {
		fmt.Printf("%-12s %10.0f %10.0f %7.2f%% %8d %8d %8d %10d %10d\n",
			c.Class, c.OfferedMbps, c.DeliveredMbps, 100*c.LossFrac,
			c.Shed, c.Expired, c.Aged, c.P50, c.P99)
	}
	fmt.Printf("per-shard attribution (submitted/completed/shed per class, voice first):\n")
	for s, stats := range res.PerShard {
		fmt.Printf("  shard %d:", s)
		for _, cs := range stats {
			fmt.Printf("  %s %d/%d/%d", cs.Class, cs.Submitted, cs.Completed, cs.Shed)
		}
		fmt.Printf("  (%d cycles)\n", res.ShardCycles[s])
	}
	fmt.Printf("arrival digests (determinism check): %x\n", res.ArrivalDigests)
	if res.Errors > 0 {
		fmt.Printf("hard errors: %d\n", res.Errors)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			log.Fatalf("-trace-out: %v", err)
		}
		defer f.Close()
		if strings.HasSuffix(traceOut, ".jsonl") {
			err = obs.WriteSpansJSONL(f, res.Spans)
		} else {
			err = obs.WriteSpansCSV(f, res.Spans)
		}
		if err != nil {
			log.Fatalf("-trace-out: %v", err)
		}
		fmt.Printf("trace: %d spans to %s (digest %x)\n", len(res.Spans), traceOut, res.TraceDigest)
	}
}

// parseFaultSpec parses the -faults schedule spec (crashes=N, stalls=N,
// window=K, comma-separated) into a plan config.
func parseFaultSpec(spec string, shards, windows int, windowCycles sim.Time, seed uint64) (faults.PlanConfig, error) {
	cfg := faults.PlanConfig{
		Seed:         seed,
		Shards:       shards,
		Windows:      windows,
		FaultWindow:  windows / 3,
		StallCycles:  windowCycles / 2,
		WindowCycles: windowCycles,
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("bad spec entry %q (want key=value)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 0 {
			return cfg, fmt.Errorf("bad value in %q (want a non-negative integer)", part)
		}
		switch kv[0] {
		case "crashes":
			cfg.Crashes = n
		case "stalls":
			cfg.Stalls = n
		case "window":
			cfg.FaultWindow = n
		default:
			return cfg, fmt.Errorf("unknown spec key %q (crashes, stalls, window)", kv[0])
		}
	}
	return cfg, nil
}

// runFaults is the fault drill: a seeded schedule crashes and stalls
// shards mid-window under open-loop load; a heartbeat detector
// quarantines each corpse at the next window boundary, re-homes its
// sessions voice-first, and browns out low classes while capacity is
// down. Every number printed is deterministic in (flags, seed).
func runFaults(spec string, shards, cores int, router, policy string,
	offered float64, windows int, windowCycles sim.Time, seed uint64) {
	planCfg, err := parseFaultSpec(spec, shards, windows, windowCycles, seed)
	if err != nil {
		log.Fatalf("-faults: %v", err)
	}
	sched, err := faults.Plan(planCfg)
	if err != nil {
		log.Fatalf("-faults: %v", err)
	}
	satPerShard := harness.SaturationMbps(harness.LoadMix, 8)
	if cores > 0 && cores != 4 {
		satPerShard *= float64(cores) / 4
	}
	offeredMbps := offered * satPerShard * float64(shards)
	var shares [qos.NumClasses]float64
	for _, p := range harness.LoadMix {
		shares[p.Class] += p.Share
	}

	cl, err := cluster.New(cluster.Config{
		Shards:        shards,
		CoresPerShard: cores,
		Router:        router,
		Policy:        policy,
		QueueRequests: true,
		Seed:          seed,
		Shape:         true,
		Shaper:        qos.Config{Capacity: 2 * max(cores, 1), QueueDepth: 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	runner, err := cluster.NewOpenLoopRunner(cl, cluster.OpenLoopRunnerConfig{
		Profiles:    harness.LoadMix,
		OfferedMbps: offeredMbps,
		Seed:        seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()

	fmt.Printf("fault drill: %d shards x %d cores at %.2fx saturation (%.0f Mbps), %d windows x %d cycles\n",
		shards, cores, offered, offeredMbps, windows, windowCycles)
	fmt.Printf("schedule (seed %d): %s\n", seed, sched)
	fmt.Printf("%-8s %10s %10s %8s %s\n", "window", "del Mbps", "voice del%", "errors", "events")
	lastHB := make([]uint64, shards)
	for w := 0; w < windows; w++ {
		var notes []string
		for _, e := range sched.ForWindow(w) {
			switch e.Kind {
			case faults.ShardCrash:
				if err := cl.ArmShardCrash(e.Shard, cl.NextHeartbeat(e.Shard), e.Offset); err != nil {
					log.Fatal(err)
				}
			case faults.ShardStall:
				if err := cl.ArmShardStall(e.Shard, cl.NextHeartbeat(e.Shard), e.Offset, e.Dur); err != nil {
					log.Fatal(err)
				}
			}
			notes = append(notes, e.String())
		}
		for i := 0; i < shards; i++ {
			lastHB[i] = cl.NextHeartbeat(i)
		}
		win, err := runner.RunWindow(windowCycles)
		if err != nil {
			log.Fatal(err)
		}
		// Heartbeat detector: a shard whose counter froze across a served
		// window is dead — quarantine and re-home, then brown out to the
		// surviving capacity.
		for i := 0; i < shards; i++ {
			if cl.QuarantinedShard(i) || cl.NextHeartbeat(i) != lastHB[i] {
				continue
			}
			rep, err := cl.FailOver(i)
			if err != nil {
				notes = append(notes, fmt.Sprintf("shard %d down, fail-over refused: %v", i, err))
				continue
			}
			notes = append(notes, fmt.Sprintf("shard %d down: re-homed %d (voice first), lost %d, %d cycles",
				i, rep.Moved, rep.Lost, rep.Took))
			healthy := 0
			for j := 0; j < shards; j++ {
				if !cl.QuarantinedShard(j) {
					healthy++
				}
			}
			deny := faults.BrownoutDeny(offeredMbps, float64(healthy)*satPerShard, shares)
			if err := cl.ApplyDeny(deny); err != nil {
				log.Fatal(err)
			}
			var shed []string
			for _, class := range qos.Classes() {
				if deny[class] {
					shed = append(shed, class.String())
				}
			}
			if len(shed) > 0 {
				notes = append(notes, "brownout: shedding "+strings.Join(shed, ", "))
			}
		}
		voice := 100.0
		for _, c := range win.Classes {
			if c.Class == qos.Voice && c.Submitted > 0 {
				voice = 100 * float64(c.Completed) / float64(c.Submitted)
			}
		}
		fmt.Printf("%-8d %10.0f %9.2f%% %8d %s\n",
			w, win.DeliveredMbps(), voice, win.Errors, strings.Join(notes, "; "))
	}
	exitReport(cl)
}

// runHeal is the self-healing drill: one seeded crash under open-loop
// load, the fault side handled exactly as runFaults (fail-over
// voice-first, brownout to the surviving capacity), and then the
// recovery side the fault drill leaves open — the corpse is rebuilt by
// streaming the base bitstream back in from src, rejoined, reloaded
// voice-first with RebalanceInto, and the brownout lifted once capacity
// is back. Every number printed is deterministic in (flags, seed).
func runHeal(shards, cores int, router, policy string,
	offered float64, windows int, windowCycles sim.Time, seed uint64, src reconfig.Source) {
	sched, err := faults.Plan(faults.PlanConfig{
		Seed:         seed,
		Shards:       shards,
		Windows:      windows,
		Crashes:      1,
		FaultWindow:  windows / 3,
		WindowCycles: windowCycles,
	})
	if err != nil {
		log.Fatalf("-heal: %v", err)
	}
	satPerShard := harness.SaturationMbps(harness.LoadMix, 8)
	if cores > 0 && cores != 4 {
		satPerShard *= float64(cores) / 4
	}
	offeredMbps := offered * satPerShard * float64(shards)
	var shares [qos.NumClasses]float64
	for _, p := range harness.LoadMix {
		shares[p.Class] += p.Share
	}

	cl, err := cluster.New(cluster.Config{
		Shards:        shards,
		CoresPerShard: cores,
		Router:        router,
		Policy:        policy,
		QueueRequests: true,
		Seed:          seed,
		Shape:         true,
		Shaper:        qos.Config{Capacity: 2 * max(cores, 1), QueueDepth: 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	runner, err := cluster.NewOpenLoopRunner(cl, cluster.OpenLoopRunnerConfig{
		Profiles:    harness.LoadMix,
		OfferedMbps: offeredMbps,
		Seed:        seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()

	restartIn := int((cluster.RestartCycles(cores, src) + windowCycles - 1) / windowCycles)
	if restartIn < 1 {
		restartIn = 1
	}
	fmt.Printf("self-healing drill: %d shards x %d cores at %.2fx saturation (%.0f Mbps), %d windows x %d cycles\n",
		shards, cores, offered, offeredMbps, windows, windowCycles)
	fmt.Printf("schedule (seed %d): %s; restart from %s takes %d cycles (~%d windows)\n",
		seed, sched, src.Name, cluster.RestartCycles(cores, src), restartIn)
	fmt.Printf("%-8s %10s %10s %8s %s\n", "window", "del Mbps", "voice del%", "errors", "events")
	lastHB := make([]uint64, shards)
	restartAt := make(map[int]int) // shard -> due window
	for w := 0; w < windows; w++ {
		var notes []string
		for _, e := range sched.ForWindow(w) {
			if e.Kind != faults.ShardCrash {
				continue
			}
			if err := cl.ArmShardCrash(e.Shard, cl.NextHeartbeat(e.Shard), e.Offset); err != nil {
				log.Fatal(err)
			}
			notes = append(notes, e.String())
		}
		for i := 0; i < shards; i++ {
			lastHB[i] = cl.NextHeartbeat(i)
		}
		win, err := runner.RunWindow(windowCycles)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < shards; i++ {
			if cl.QuarantinedShard(i) || cl.NextHeartbeat(i) != lastHB[i] {
				continue
			}
			rep, err := cl.FailOver(i)
			if err != nil {
				notes = append(notes, fmt.Sprintf("shard %d down, fail-over refused: %v", i, err))
				continue
			}
			notes = append(notes, fmt.Sprintf("shard %d down: re-homed %d (voice first), lost %d",
				i, rep.Moved, rep.Lost))
			healthy := 0
			for j := 0; j < shards; j++ {
				if !cl.QuarantinedShard(j) {
					healthy++
				}
			}
			deny := faults.BrownoutDeny(offeredMbps, float64(healthy)*satPerShard, shares)
			if err := cl.ApplyDeny(deny); err != nil {
				log.Fatal(err)
			}
			for _, class := range qos.Classes() {
				if deny[class] {
					notes = append(notes, "brownout: shedding "+class.String())
				}
			}
			restartAt[i] = w + restartIn
		}
		for i, due := range restartAt {
			if w+1 < due {
				continue
			}
			delete(restartAt, i)
			rep, err := cl.Restart(i, src)
			if err != nil {
				notes = append(notes, fmt.Sprintf("shard %d restart refused: %v", i, err))
				continue
			}
			// The restart swapped the shard's platform out from under the
			// runner's per-window byte deltas; re-base them.
			runner.Resnapshot()
			moved, err := cl.RebalanceInto(i)
			if err != nil {
				log.Fatal(err)
			}
			if err := cl.ApplyDeny([qos.NumClasses]bool{}); err != nil {
				log.Fatal(err)
			}
			notes = append(notes, fmt.Sprintf("shard %d restarted from %s in %d cycles: rejoined, %d sessions back, brownout lifted",
				i, src.Name, rep.Took, moved))
		}
		voice := 100.0
		for _, c := range win.Classes {
			if c.Class == qos.Voice && c.Submitted > 0 {
				voice = 100 * float64(c.Completed) / float64(c.Submitted)
			}
		}
		fmt.Printf("%-8d %10.0f %9.2f%% %8d %s\n",
			w, win.DeliveredMbps(), voice, win.Errors, strings.Join(notes, "; "))
	}
	exitReport(cl)
}

// flagSet reports whether a flag was passed explicitly on the command
// line (so presets never override an operator's choice).
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runFleet demonstrates the elastic control plane: open sessions across
// the pool, then scale the serving set and/or run a rolling Whirlpool
// swap, reporting the voice-first drains and re-admissions per leg.
func runFleet(cfg cluster.WorkloadConfig, scaleTo int, srcName string) {
	cl, err := cluster.New(cluster.Config{
		Shards:        cfg.Shards,
		CoresPerShard: cfg.CoresPerShard,
		Router:        cfg.Router,
		Policy:        cfg.Policy,
		QueueRequests: cfg.QueueRequests,
		Seed:          uint64(cfg.Seed),
		BatchWindow:   cfg.BatchWindow,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	f := fleet.New(cl)

	// A handful of sessions so the drains have something to re-home.
	var sessions []*cluster.Session
	for i := 0; i < 2*cfg.Shards; i++ {
		ses, err := cl.Open(cluster.OpenSpec{Suite: trafficgen.SuiteFor(trafficgen.WiMaxGCM), KeyLen: 16})
		if err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, ses)
	}

	if scaleTo > 0 {
		rep, err := f.Scale(scaleTo)
		if err != nil {
			log.Fatalf("-scale: %v", err)
		}
		fmt.Printf("scaled serving set to %d of %d shards; %d sessions re-homed (voice first)\n",
			rep.Active, cl.Shards(), rep.Moved)
	}

	if srcName != "" {
		src, err := reconfig.SourceByName(srcName)
		if err != nil {
			log.Fatalf("-rolling-swap: %v", err)
		}
		reports, err := f.RollingSwap(0, reconfig.EngineWhirlpool, src, nil)
		if err != nil {
			log.Fatalf("rolling swap: %v", err)
		}
		fmt.Printf("rolling Whirlpool swap from %s (core 0 of every serving shard):\n", src.Name)
		for _, rep := range reports {
			fmt.Printf("  shard %d: %d cycles (%.0f ms), drained %d, readmitted %d\n",
				rep.Shard, rep.Took, float64(rep.Took)/190e6*1e3, rep.Drained, rep.Readmitted)
		}
	}

	// Traffic still flows on the reshaped fleet.
	if _, err := sessions[0].Encrypt(make([]byte, 12), nil, []byte("served by the elastic fleet")); err != nil {
		log.Fatal(err)
	}
	exitReport(cl)
}

// runWithReconfig demonstrates the re-homing path: reconfigure one core,
// run block-cipher traffic, and hash on the reconfigured shard.
func runWithReconfig(cfg cluster.WorkloadConfig, shardID int) {
	cl, err := cluster.New(cluster.Config{
		Shards:        cfg.Shards,
		CoresPerShard: cfg.CoresPerShard,
		Router:        cfg.Router,
		Policy:        cfg.Policy,
		QueueRequests: cfg.QueueRequests,
		Seed:          uint64(cfg.Seed),
		BatchWindow:   cfg.BatchWindow,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	took, moved, err := cl.Reconfigure(shardID, 0, reconfig.EngineWhirlpool, reconfig.StagingRAM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard %d core 0 -> Whirlpool in %d cycles (%.0f ms); %d sessions re-homed\n",
		shardID, took, float64(took)/190e6*1e3, moved)
	ses, err := cl.Open(cluster.OpenSpec{Suite: trafficgen.SuiteFor(trafficgen.WiMaxGCM), KeyLen: 16})
	if err != nil {
		log.Fatal(err)
	}
	hash, err := cl.Open(cluster.OpenSpec{Suite: core.Suite{Family: cryptocore.FamilyHash}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GCM session homed on shard %d, hash session on shard %d\n", ses.Shard(), hash.Shard())
	digest, err := hash.Sum([]byte("hashing on the reconfigured shard"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whirlpool digest: %x...\n", digest[:16])
	// Snapshot instead of Metrics: the summary printer only reads counters,
	// and Snapshot is safe to call without the front-end drain (the verdict
	// and byte counters are atomics polled without stopping the shards).
	exitReport(cl)
}
