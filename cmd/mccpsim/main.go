// mccpsim runs ad-hoc simulations of the MCCP and describes the modeled
// architecture.
//
// Usage:
//
//	mccpsim -describe                   # architecture summary (Fig. 1-3)
//	mccpsim -cores 4 -family gcm -key 16 -packets 20 -size 2048
//	mccpsim -mixed -packets 100         # mixed multi-standard traffic
//	mccpsim -qos                        # E12: QoS overload + drain policies
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mccp/internal/cryptocore"
	"mccp/internal/firmware"
	"mccp/internal/fpga"
	"mccp/internal/harness"
	"mccp/internal/scheduler"
	"mccp/internal/trafficgen"
)

func main() {
	describe := flag.Bool("describe", false, "print the modeled architecture")
	mixed := flag.Bool("mixed", false, "run a mixed multi-standard workload")
	qosRun := flag.Bool("qos", false, "run the E12 QoS experiments (overload retention + drain fairness)")
	cores := flag.Int("cores", 4, "number of cryptographic cores")
	family := flag.String("family", "gcm", "gcm, ccm, ccm2 (two-core split)")
	keyLen := flag.Int("key", 16, "key bytes: 16, 24 or 32")
	packets := flag.Int("packets", 20, "packets to run")
	size := flag.Int("size", 2048, "payload bytes per packet")
	streams := flag.Int("streams", 1, "packets kept in flight")
	policy := flag.String("policy", "first-idle", "dispatch policy (mixed mode)")
	flag.Parse()

	// Validate user-facing names up front: a typo should produce a flag
	// error, not a panic (or a silent fallback) deep in the model.
	if _, err := scheduler.ByName(*policy); err != nil {
		log.Fatalf("-policy: %v", err)
	}

	switch {
	case *describe:
		printArchitecture()
	case *qosRun:
		fmt.Println("== E12: QoS priority classes (§VIII extension) ==")
		fmt.Print(harness.FormatQoSTable(harness.QoSTable(*packets)))
		fmt.Println()
		fmt.Println("shaper drain fairness (sustained voice + background burst, capacity 4):")
		fmt.Print(harness.FormatQoSDrains(harness.QoSDrainComparison(2 * *packets)))
	case *mixed:
		r := trafficgen.RunMixed(trafficgen.MixedConfig{
			Policy: *policy, Packets: *packets, Channels: 6, Seed: 1,
			QueueDepth: true, Cores: *cores,
		})
		fmt.Printf("mixed traffic, %d packets, policy %s:\n", *packets, *policy)
		fmt.Printf("  throughput     %8.0f Mbps\n", r.ThroughputMbps)
		fmt.Printf("  mean latency   %8.0f cycles (%.1f µs)\n", r.MeanLatency, r.MeanLatency/190)
		fmt.Printf("  key expansions %8d\n", r.KeyExpansions)
	default:
		var fam cryptocore.Family
		m := harness.Mapping{Name: "custom", Streams: *streams}
		switch *family {
		case "gcm":
			fam = cryptocore.FamilyGCM
		case "ccm":
			fam = cryptocore.FamilyCCM
		case "ccm2":
			fam = cryptocore.FamilyCCM
			m.Split = true
		default:
			log.Fatalf("unknown family %q", *family)
		}
		mbps := harness.MeasureThroughput(fam, m, *keyLen, *size, *packets)
		fmt.Printf("%s AES-%d, %d x %d-byte packets, %d stream(s): %.0f Mbps at 190 MHz\n",
			*family, *keyLen*8, *packets, *size, *streams, mbps)
	}
	_ = os.Stdout
}

func printArchitecture() {
	d := fpga.MCCPDesign(4)
	fmt.Println(`MCCP — reconfigurable Multi-Core Crypto-Processor (Grand et al., IPDPS 2011)

  communication controller              main controller
        |  32-bit data (Cross Bar)            | key writes
        |  32-bit instr / 8-bit return        v
  +-----v--------------------------------- Key Memory ----+
  |  Task Scheduler (8-bit controller)  Key Scheduler     |
  |      |  start/done, params             | round keys   |
  |  +---v----+  +--------+  +--------+  +-v------+       |
  |  | Core 0 |==| Core 1 |  | Core 2 |==| Core 3 |       |
  |  +--------+  +--------+  +--------+  +--------+       |
  |   each core: 8-bit PicoBlaze controller (2 cyc/instr) |
  |              Cryptographic Unit: 4x128-bit bank,      |
  |                AES core (44/52/60 cyc) [reconfig.]    |
  |                GHASH core (3-bit digits, 43 cyc)      |
  |                XOR/mask, INC16, EQU, FIFO I/O         |
  |              2x 512x32-bit packet FIFOs               |
  |              Key Cache (4 contexts)                   |
  |   == : paired inter-core shift registers (2-core CCM) |
  +--------------------------------------------------------+`)
	fmt.Printf("\nresource model: %d slices, %d BRAMs, Fmax %.0f MHz (paper: 4084 / 26 / 190)\n",
		d.Slices(), d.BRAMs(), d.FmaxMHz())
	fmt.Printf("firmware: AES image %d words, hash image %d words (1024-word imem)\n",
		firmware.ImageAESWords(), firmware.ImageHashWords())
}
