// mccpsim runs ad-hoc simulations of the MCCP and describes the modeled
// architecture.
//
// Usage:
//
//	mccpsim -describe                   # architecture summary (Fig. 1-3)
//	mccpsim -cores 4 -family gcm -key 16 -packets 20 -size 2048
//	mccpsim -mixed -packets 100         # mixed multi-standard traffic
//	mccpsim -qos                        # E12: QoS overload + drain policies
//	mccpsim -arrivals poisson -offered 0.8   # one open-loop load point
//	mccpsim -loadcurve                  # E13: full offered-load sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mccp/internal/arrivals"
	"mccp/internal/cryptocore"
	"mccp/internal/firmware"
	"mccp/internal/fpga"
	"mccp/internal/harness"
	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/scheduler"
	"mccp/internal/trafficgen"
)

func main() {
	describe := flag.Bool("describe", false, "print the modeled architecture")
	mixed := flag.Bool("mixed", false, "run a mixed multi-standard workload")
	qosRun := flag.Bool("qos", false, "run the E12 QoS experiments (overload retention + drain fairness)")
	cores := flag.Int("cores", 4, "number of cryptographic cores")
	family := flag.String("family", "gcm", "gcm, ccm, ccm2 (two-core split)")
	keyLen := flag.Int("key", 16, "key bytes: 16, 24 or 32")
	packets := flag.Int("packets", 20, "packets to run")
	size := flag.Int("size", 2048, "payload bytes per packet")
	streams := flag.Int("streams", 1, "packets kept in flight")
	policy := flag.String("policy", "first-idle", "dispatch policy (mixed / open-loop modes)")
	arrivalsProc := flag.String("arrivals", "", "open-loop arrival process: "+
		strings.Join(arrivals.Names(), ", ")+" (runs one E13 load point)")
	offered := flag.Float64("offered", 1.0, "offered load as a fraction of saturation (open-loop modes)")
	drain := flag.String("drain", "", "shaper drain policy for open-loop modes: "+
		strings.Join(qos.DrainNames(), ", "))
	loadCurve := flag.Bool("loadcurve", false, "run the full E13 offered-load sweep (first-idle vs qos-priority)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("mccpsim"))
		return
	}

	// Validate user-facing names up front: a typo should produce a flag
	// error, not a panic (or a silent fallback) deep in the model.
	if _, err := scheduler.ByName(*policy); err != nil {
		log.Fatalf("-policy: %v", err)
	}
	if *drain != "" {
		if _, err := qos.DrainByName(*drain); err != nil {
			log.Fatalf("-drain: %v", err)
		}
	}
	if *arrivalsProc != "" {
		if _, err := arrivals.ByName(*arrivalsProc, 1); err != nil {
			log.Fatalf("-arrivals: %v", err)
		}
	}

	if (*loadCurve || *arrivalsProc != "") && flagTouched("cores") && *cores != 4 {
		log.Fatalf("-cores: the open-loop modes (-arrivals/-loadcurve) model the paper's fixed 4-core device; -cores is not applied there")
	}

	switch {
	case *describe:
		printArchitecture()
	case *loadCurve:
		fmt.Println("== E13: open-loop load curves (offered-load sweep) ==")
		res := harness.LoadCurve(harness.LoadCurveConfig{
			Process: *arrivalsProc,
			Drain:   *drain,
		})
		fmt.Print(harness.FormatLoadCurve(res))
	case *arrivalsProc != "":
		cfg := harness.LoadCurveConfig{Process: *arrivalsProc, Drain: *drain}
		sat := harness.SaturationMbps(harness.LoadMix, 8)
		point := harness.LoadPointRun(*policy, *offered, sat, cfg)
		fmt.Printf("open-loop %s arrivals at %.2fx saturation (%.0f Mbps), policy %s:\n",
			*arrivalsProc, *offered, sat, *policy)
		fmt.Printf("%-12s %10s %10s %8s %8s %8s %8s %10s %10s\n",
			"class", "off Mbps", "del Mbps", "loss%", "shed", "expired", "misses", "p50 cyc", "p99 cyc")
		for _, c := range point.Classes {
			fmt.Printf("%-12s %10.0f %10.0f %7.2f%% %8d %8d %8d %10d %10d\n",
				c.Class, c.OfferedMbps, c.DeliveredMbps, 100*c.LossFrac,
				c.Shed, c.Expired, c.Misses, c.P50, c.P99)
		}
		fmt.Printf("total: offered %.0f Mbps, delivered %.0f Mbps, loss %.2f%%\n",
			point.TotalOfferedMbps, point.TotalDeliveredMbps, 100*point.TotalLossFrac)
	case *qosRun:
		fmt.Println("== E12: QoS priority classes (§VIII extension) ==")
		fmt.Print(harness.FormatQoSTable(harness.QoSTable(*packets)))
		fmt.Println()
		fmt.Println("shaper drain fairness (sustained voice + background burst, capacity 4):")
		fmt.Print(harness.FormatQoSDrains(harness.QoSDrainComparison(2 * *packets)))
	case *mixed:
		r := trafficgen.RunMixed(trafficgen.MixedConfig{
			Policy: *policy, Packets: *packets, Channels: 6, Seed: 1,
			QueueDepth: true, Cores: *cores,
		})
		fmt.Printf("mixed traffic, %d packets, policy %s:\n", *packets, *policy)
		fmt.Printf("  throughput     %8.0f Mbps\n", r.ThroughputMbps)
		fmt.Printf("  mean latency   %8.0f cycles (%.1f µs)\n", r.MeanLatency, r.MeanLatency/190)
		fmt.Printf("  key expansions %8d\n", r.KeyExpansions)
	default:
		var fam cryptocore.Family
		m := harness.Mapping{Name: "custom", Streams: *streams}
		switch *family {
		case "gcm":
			fam = cryptocore.FamilyGCM
		case "ccm":
			fam = cryptocore.FamilyCCM
		case "ccm2":
			fam = cryptocore.FamilyCCM
			m.Split = true
		default:
			log.Fatalf("unknown family %q", *family)
		}
		mbps := harness.MeasureThroughput(fam, m, *keyLen, *size, *packets)
		fmt.Printf("%s AES-%d, %d x %d-byte packets, %d stream(s): %.0f Mbps at 190 MHz\n",
			*family, *keyLen*8, *packets, *size, *streams, mbps)
	}
	_ = os.Stdout
}

// flagTouched reports whether a flag was passed explicitly.
func flagTouched(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func printArchitecture() {
	d := fpga.MCCPDesign(4)
	fmt.Println(`MCCP — reconfigurable Multi-Core Crypto-Processor (Grand et al., IPDPS 2011)

  communication controller              main controller
        |  32-bit data (Cross Bar)            | key writes
        |  32-bit instr / 8-bit return        v
  +-----v--------------------------------- Key Memory ----+
  |  Task Scheduler (8-bit controller)  Key Scheduler     |
  |      |  start/done, params             | round keys   |
  |  +---v----+  +--------+  +--------+  +-v------+       |
  |  | Core 0 |==| Core 1 |  | Core 2 |==| Core 3 |       |
  |  +--------+  +--------+  +--------+  +--------+       |
  |   each core: 8-bit PicoBlaze controller (2 cyc/instr) |
  |              Cryptographic Unit: 4x128-bit bank,      |
  |                AES core (44/52/60 cyc) [reconfig.]    |
  |                GHASH core (3-bit digits, 43 cyc)      |
  |                XOR/mask, INC16, EQU, FIFO I/O         |
  |              2x 512x32-bit packet FIFOs               |
  |              Key Cache (4 contexts)                   |
  |   == : paired inter-core shift registers (2-core CCM) |
  +--------------------------------------------------------+`)
	fmt.Printf("\nresource model: %d slices, %d BRAMs, Fmax %.0f MHz (paper: 4084 / 26 / 190)\n",
		d.Slices(), d.BRAMs(), d.FmaxMHz())
	fmt.Printf("firmware: AES image %d words, hash image %d words (1024-word imem)\n",
		firmware.ImageAESWords(), firmware.ImageHashWords())
}
