// benchjson converts `go test -bench` output into the repository's
// benchmark-trajectory JSON and optionally gates it against a committed
// baseline. The CI bench job runs all steps in one invocation:
//
//	go test -run '^$' -bench 'Table2|Cluster|QoS' -benchtime 1x . | tee bench.txt
//	benchjson -in bench.txt -out BENCH_ci.json -hostout BENCH_host.json \
//	          -baseline BENCH_baseline.json -match 'Table2' -tolerance 0.25 \
//	          -hostbudget 'Table2_GCM_1core_128=60'
//
// Only deterministic virtual-time throughput metrics (*_Mbps at the
// modeled 190 MHz, voice_retention) participate in the baseline gate;
// ns/op, host_Mbps and allocs/op describe the host machine and are
// recorded — -hostout writes them to a separate informational trajectory
// file — but never gated against the baseline. Three targeted host-side
// checks exist instead: -hostbudget (catastrophic-regression smoke
// check: a named benchmark's wall clock, ns/op x iterations, must stay
// under a deliberately generous budget in seconds), -clusterscale (the
// pipelined cluster dispatcher's host-scaling ratio, derated to the
// run's CPU count and skipped on single-CPU machines) and -allocspacket
// (the zero-alloc packet path's allocations-per-packet ceiling). Exit
// status: 0 clean, 1 regression/budget violation, 2 usage/IO error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mccp/internal/benchfmt"
	"mccp/internal/harness"
	"mccp/internal/obs"
	"mccp/internal/qos"
)

func main() {
	in := flag.String("in", "-", "bench output to read (- = stdin)")
	out := flag.String("out", "", "write trajectory JSON here (empty = skip)")
	hostOut := flag.String("hostout", "", "write host-speed metrics (ns/op, host_Mbps, allocs/op) here (empty = skip)")
	benchExpr := flag.String("bench", "", "provenance note: the -bench expression the run used")
	baselinePath := flag.String("baseline", "", "baseline JSON to gate against (empty = no gate)")
	match := flag.String("match", "Table2", "regexp of benchmark names the gate covers")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional throughput drop before the gate fails")
	hostBudget := flag.String("hostbudget", "", "host-speed smoke check, 'BenchName=seconds': fail if that benchmark's wall clock exceeded the budget")
	clusterScale := flag.String("clusterscale", "", "cluster host-scaling gate, 'Top:Base=ratio' (e.g. 'Cluster/shards=8:Cluster/shards=1=1.5'): fail if Top's host_Mbps is below ratio x Base's; derated to 0.6 x GOMAXPROCS and skipped on single-CPU runs, where host-parallel speedup is impossible")
	allocsBudget := flag.String("allocspacket", "", "allocation ceiling, 'BenchName=allocs': fail if the benchmark's allocs_op per packet exceeds the ceiling")
	loadSmoke := flag.Bool("loadsmoke", false, "run the E13 mini load curve in-process and fail if the voice class loses >1% of its packets at 0.5x saturation under qos-priority")
	wireSmoke := flag.Bool("wiresmoke", false, "run the one-point loopback E14 gate and fail if voice wire p99 at 0.5x saturation exceeds 2x the in-process E13 p99, or if any voice packet is shed")
	reconfigSmoke := flag.Bool("reconfigsmoke", false, "run the E15 mini rolling-swap gate and fail if voice loses >1% or its p99 inflates past 3x baseline during the bitstream windows under qos-priority")
	faultSmoke := flag.Bool("faultsmoke", false, "run the E16 mini fault drill (1 of 4 shards crashed mid-load plus a churn storm at 0.9x saturation under qos-priority) and fail if voice loses >1%, any session is lost, or voice delivery does not recover within 3 windows")
	healSmoke := flag.Bool("healsmoke", false, "run the E17 mini recovery drill (1 of 4 shards crashed mid-load at 0.9x saturation, restart loop armed with the icap source) and fail if voice loses >1%, any session is lost, the shard does not restart and rejoin, the brownout is not fully lifted, or delivered capacity does not climb back to the pre-crash rate")
	obsSmoke := flag.Bool("obssmoke", false, "run the E18 observability gate and fail if the traced run is not bit-identical run-to-run, the stage sums do not tile the end-to-end latency, the traced percentiles diverge from the untraced E13 point, the flight recorder produces no postmortem from a one-crash drill, or a disabled tracer costs more than 5% wall clock")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("benchjson"))
		return
	}

	// The smoke gates run the simulation directly (no bench input needed),
	// so they are checked before input parsing and compose with the other
	// gates when input is present.
	if *loadSmoke {
		if err := checkLoadSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *wireSmoke {
		if err := checkWireSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *reconfigSmoke {
		if err := checkReconfigSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *faultSmoke {
		if err := checkFaultSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *healSmoke {
		if err := checkHealSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *obsSmoke {
		if err := checkObsSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if (*loadSmoke || *wireSmoke || *reconfigSmoke || *faultSmoke || *healSmoke || *obsSmoke) &&
		*in == "-" && *out == "" && *baselinePath == "" && *hostOut == "" {
		return // smoke-only invocation
	}

	results, err := parseInput(*in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in %s", *in))
	}

	if *out != "" {
		writeResults(*out, *benchExpr, results)
	}
	if *hostOut != "" {
		host := benchfmt.HostOnly(results)
		if len(host) == 0 {
			fatal(fmt.Errorf("no host metrics found for -hostout"))
		}
		writeResults(*hostOut, *benchExpr, host)
	}
	if *hostBudget != "" {
		if err := checkHostBudget(*hostBudget, results); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *clusterScale != "" {
		if err := checkClusterScale(*clusterScale, results); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *allocsBudget != "" {
		if err := checkAllocsPerPacket(*allocsBudget, results); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	if *baselinePath == "" {
		return
	}
	bf, err := os.Open(*baselinePath)
	if err != nil {
		fatal(err)
	}
	baseline, err := benchfmt.ReadJSON(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}
	regs, err := benchfmt.Gate(results, baseline, *match, *tolerance)
	if err != nil {
		fatal(err)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% against %s:\n",
			len(regs), 100**tolerance, *baselinePath)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchjson: gate clean (%q, tolerance %.0f%%) against %s\n",
		*match, 100**tolerance, *baselinePath)
}

func writeResults(path, benchExpr string, results []benchfmt.Result) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := benchfmt.WriteJSON(f, benchExpr, results); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(results), path)
}

// checkHostBudget enforces 'BenchName=seconds': the named benchmark's total
// wall clock (ns/op x iterations) must stay under the budget. This is a
// catastrophic-kernel-regression smoke check, so budgets should be set an
// order of magnitude above a healthy run.
func checkHostBudget(spec string, results []benchfmt.Result) error {
	name, limitStr, ok := strings.Cut(spec, "=")
	if !ok {
		fatal(fmt.Errorf("bad -hostbudget %q (want 'BenchName=seconds')", spec))
	}
	limit, err := strconv.ParseFloat(limitStr, 64)
	if err != nil || limit <= 0 {
		fatal(fmt.Errorf("bad -hostbudget seconds in %q", spec))
	}
	for _, r := range results {
		if r.Name != name {
			continue
		}
		wall := r.Metrics["ns_op"] * float64(r.Iterations) / 1e9
		if wall > limit {
			return fmt.Errorf("host-speed smoke check failed: %s took %.1fs (budget %.0fs) — the simulation kernel has regressed catastrophically", name, wall, limit)
		}
		fmt.Printf("benchjson: host budget ok: %s took %.2fs (budget %.0fs)\n", name, wall, limit)
		return nil
	}
	return fmt.Errorf("host budget benchmark %q missing from results", name)
}

// checkClusterScale enforces 'Top:Base=ratio': Top's host_Mbps must reach
// ratio x Base's. The requested ratio is derated to what the run's CPU
// count makes possible (0.6 x GOMAXPROCS); single-CPU runs skip the
// check with a notice — the pipelined dispatcher cannot manufacture
// parallel wall-clock speedup without CPUs to run the shards on.
func checkClusterScale(spec string, results []benchfmt.Result) error {
	// Split on the LAST '=' — benchmark names (Cluster/shards=8) carry
	// their own.
	pair, ratioStr, ok := cutLast(spec, "=")
	if !ok {
		fatal(fmt.Errorf("bad -clusterscale %q (want 'Top:Base=ratio')", spec))
	}
	top, base, ok := strings.Cut(pair, ":")
	if !ok {
		fatal(fmt.Errorf("bad -clusterscale %q (want 'Top:Base=ratio')", spec))
	}
	minRatio, err := strconv.ParseFloat(ratioStr, 64)
	if err != nil || minRatio <= 0 {
		fatal(fmt.Errorf("bad -clusterscale ratio in %q", spec))
	}
	// A missing benchmark is a gate failure (exit 1), like -hostbudget's
	// equivalent case — only malformed specs are usage errors.
	h, err := benchfmt.CheckHostScale(results, top, base, minRatio)
	if err != nil {
		return err
	}
	if h.Skipped != "" {
		fmt.Printf("benchjson: cluster scaling check skipped (%s; measured %.2fx)\n", h.Skipped, h.Ratio)
		return nil
	}
	if !h.Pass() {
		return fmt.Errorf("cluster host scaling regressed: %s is %.2fx %s in host_Mbps (want >= %.2fx) — the pipelined dispatch path has serialized", top, h.Ratio, base, h.Want)
	}
	fmt.Printf("benchjson: cluster scaling ok: %s = %.2fx %s host_Mbps (floor %.2fx)\n", top, h.Ratio, base, h.Want)
	return nil
}

// checkAllocsPerPacket enforces 'BenchName=allocs': the benchmark's
// allocs_op spread over its packets metric must stay under the ceiling —
// the zero-alloc packet path's regression guard.
func checkAllocsPerPacket(spec string, results []benchfmt.Result) error {
	name, limitStr, ok := cutLast(spec, "=")
	if !ok {
		fatal(fmt.Errorf("bad -allocspacket %q (want 'BenchName=allocs')", spec))
	}
	limit, err := strconv.ParseFloat(limitStr, 64)
	if err != nil || limit <= 0 {
		fatal(fmt.Errorf("bad -allocspacket ceiling in %q", spec))
	}
	perPkt, err := benchfmt.AllocsPerPacket(results, name)
	if err != nil {
		return err // missing benchmark/metric fails the gate, not usage
	}
	if perPkt > limit {
		return fmt.Errorf("allocation regression: %s allocates %.0f objects/packet (ceiling %.0f) — the packet path has started allocating again", name, perPkt, limit)
	}
	fmt.Printf("benchjson: allocs ok: %s at %.0f allocs/packet (ceiling %.0f)\n", name, perPkt, limit)
	return nil
}

// checkLoadSmoke runs the 3-point E13 mini load curve (a few hundred
// simulated packets, deterministic) and enforces the voice-protection
// floor: under qos-priority, voice loss at 0.5x saturation must stay at
// or below 1%.
func checkLoadSmoke() error {
	v := harness.LoadSmoke()
	if !v.Pass() {
		return fmt.Errorf("%s — the QoS layer no longer protects voice under moderate load", v)
	}
	fmt.Printf("benchjson: %s\n", v)
	for _, p := range v.Points {
		voice := p.Cell(qos.Voice)
		bg := p.Cell(qos.Background)
		fmt.Printf("benchjson:   offered %.2fx: voice loss %.2f%% p99 %d cyc, background loss %.2f%%\n",
			p.Offered, 100*voice.LossFrac, voice.P99, 100*bg.LossFrac)
	}
	return nil
}

// checkWireSmoke runs the one-point loopback E14 measurement (a real
// mccpserver on an in-process transport, deterministic) and enforces the
// service-boundary bar: at 0.5x saturation, voice wire p99 must stay
// within 2x of the in-process E13 p99 and no voice packet may be shed.
func checkWireSmoke() error {
	v := harness.WireSmoke()
	if !v.Pass() {
		return fmt.Errorf("%s — the server front end costs voice more than the service boundary should", v)
	}
	fmt.Printf("benchjson: %s\n", v)
	bg := v.Point.Cell(qos.Background)
	fmt.Printf("benchjson:   offered %.2fx: wire %.0f Mbps, background wire p99 %d cyc, loss %.2f%%\n",
		v.Point.Offered, v.Point.WireMbps, bg.P99, 100*bg.LossFrac)
	return nil
}

// checkReconfigSmoke runs the E15 mini rolling-swap gate (two shards,
// qos-priority, staging-RAM bitstream, deterministic) and enforces the
// agility bar: during the bitstream windows voice loss must stay at or
// below 1% and the during-swap voice p99 within 3x the all-shards
// baseline plus scheduling slack.
func checkReconfigSmoke() error {
	v := harness.ReconfigSmoke()
	if !v.Pass() {
		return fmt.Errorf("%s — rolling swaps no longer protect voice while a shard is down", v)
	}
	fmt.Printf("benchjson: %s\n", v)
	bg := v.Run.Cell(qos.Background)
	fmt.Printf("benchjson:   source %s (%.1f ms window): delivered %.0f -> %.0f Mbps during swap, background loss %.2f%%\n",
		v.Run.Source, v.Run.TrueWindowMillis, v.Run.BaselineDelivered, v.Run.DuringDelivered, 100*bg.LossFrac)
	return nil
}

// checkFaultSmoke runs the one-row loopback E16 fault drill (one crash in
// a 4-shard cluster with a churn storm, 0.9x saturation, qos-priority,
// deterministic) and enforces the robustness bar: voice loss within 1%,
// every corpse session re-homed with none lost, and voice delivery back
// at 99% within the recovery limit.
func checkFaultSmoke() error {
	v := harness.FaultSmoke()
	if !v.Pass() {
		return fmt.Errorf("%s — the fault plane no longer keeps voice alive through a shard crash", v)
	}
	fmt.Printf("benchjson: %s\n", v)
	bg := v.Point.Cell(qos.Background)
	fmt.Printf("benchjson:   crashes %d churn %d: %d sessions churned, background loss %.2f%%, worst rehome %d cyc\n",
		v.Point.Row.Crashes, v.Point.Row.Churn, v.Point.Churned, 100*bg.LossFrac, v.Point.RehomeTook)
	return nil
}

// checkHealSmoke runs the one-drill loopback E17 recovery gate (one
// crash in a 4-shard cluster at 0.9x saturation, qos-priority, restart
// from the icap source, deterministic) and enforces the self-healing
// bar: the corpse restarts and rejoins, voice rides through both the
// fall and the climb within 1% loss with no session lost, the brownout
// mask lifts fully, and delivered capacity climbs back to the pre-crash
// rate.
func checkHealSmoke() error {
	v := harness.HealSmoke()
	if !v.Pass() {
		return fmt.Errorf("%s — the recovery plane no longer brings a crashed shard back", v)
	}
	fmt.Printf("benchjson: %s\n", v)
	bg := v.Point.Cell(qos.Background)
	fmt.Printf("benchjson:   source %s: restart %d cyc (%.1f ms at true speed), %d sessions rebalanced back, background loss %.2f%%\n",
		v.Point.Source, v.Point.RestartCycles, v.Point.TrueRestartMillis,
		healRebalanced(v.Point), 100*bg.LossFrac)
	return nil
}

// checkObsSmoke runs the E18 observability gate: the traced measurement
// must replay bit-identically, reconcile exactly with the untraced E13
// point (same percentiles, stage sums tiling the totals), the flight
// recorder must freeze at least one postmortem during the one-crash
// drill, and a disabled-but-attached tracer must stay within 5% of
// tracer-absent wall clock.
func checkObsSmoke() error {
	v := harness.ObsSmoke()
	if !v.Pass() {
		return fmt.Errorf("%s — the observability plane is perturbing or misreporting the measurement", v)
	}
	fmt.Printf("benchjson: %s\n", v)
	voice := v.Point.StageCell(qos.Voice)
	bg := v.Point.StageCell(qos.Background)
	fmt.Printf("benchjson:   offered %.2fx: %d spans (digest %x); voice p99 %d cyc (queue %d core %d), background p99 %d cyc (queue %d core %d)\n",
		v.Point.Offered, v.Point.Spans, v.Point.TraceDigest,
		voice.TotalP99, voice.P99[0], voice.P99[3],
		bg.TotalP99, bg.P99[0], bg.P99[3])
	return nil
}

// healRebalanced sums the sessions the recovery plane shifted back onto
// rebuilt shards.
func healRebalanced(p harness.RecoveryPoint) int {
	n := 0
	for _, ev := range p.Heals {
		n += ev.Rebalanced
	}
	return n
}

// cutLast splits s around its last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

func parseInput(path string) ([]benchfmt.Result, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return benchfmt.Parse(r)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(2)
}
