// benchjson converts `go test -bench` output into the repository's
// benchmark-trajectory JSON and optionally gates it against a committed
// baseline. The CI bench job runs both steps in one invocation:
//
//	go test -run '^$' -bench 'Table2|Cluster|QoS' -benchtime 1x . | tee bench.txt
//	benchjson -in bench.txt -out BENCH_ci.json \
//	          -baseline BENCH_baseline.json -match 'Table2' -tolerance 0.25
//
// Only deterministic virtual-time throughput metrics (*_Mbps at the
// modeled 190 MHz, voice_retention) participate in the gate; ns/op and
// host_Mbps describe the host machine and are recorded but never gated.
// Exit status: 0 clean, 1 regression(s), 2 usage/IO error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mccp/internal/benchfmt"
)

func main() {
	in := flag.String("in", "-", "bench output to read (- = stdin)")
	out := flag.String("out", "", "write trajectory JSON here (empty = skip)")
	benchExpr := flag.String("bench", "", "provenance note: the -bench expression the run used")
	baselinePath := flag.String("baseline", "", "baseline JSON to gate against (empty = no gate)")
	match := flag.String("match", "Table2", "regexp of benchmark names the gate covers")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional throughput drop before the gate fails")
	flag.Parse()

	results, err := parseInput(*in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in %s", *in))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := benchfmt.WriteJSON(f, *benchExpr, results); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: wrote %d results to %s\n", len(results), *out)
	}

	if *baselinePath == "" {
		return
	}
	bf, err := os.Open(*baselinePath)
	if err != nil {
		fatal(err)
	}
	baseline, err := benchfmt.ReadJSON(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}
	regs, err := benchfmt.Gate(results, baseline, *match, *tolerance)
	if err != nil {
		fatal(err)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% against %s:\n",
			len(regs), 100**tolerance, *baselinePath)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchjson: gate clean (%q, tolerance %.0f%%) against %s\n",
		*match, 100**tolerance, *baselinePath)
}

func parseInput(path string) ([]benchfmt.Result, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return benchfmt.Parse(r)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(2)
}
