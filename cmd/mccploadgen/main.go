// mccploadgen is the open-loop network client for mccpserver: per-session
// arrival processes on a splittable PRNG generate packets on a wire
// clock, each fixed window is pipelined behind a FLUSH barrier, and the
// per-class report shows delivered rate, verdict mix, and end-to-end wire
// latency percentiles. With one connection the run is deterministic in
// (flags, seed).
//
// Usage:
//
//	mccploadgen -connect 127.0.0.1:9650 -sessions 1000 -offered-mbps 2500
//	mccploadgen -conns 4 -process onoff -windows 96
//	mccploadgen -trace run.csv -offered-mbps 5000   # per-request timing lines
//	mccploadgen -churn 8 -churn-from 16             # close+reopen 8 sessions
//	                                                # per window: churn storm
//	mccploadgen -io-timeout 2s -retries 3           # bounded-backoff retries
//	                                                # instead of hanging on a
//	                                                # wedged server
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"mccp/internal/arrivals"
	"mccp/internal/harness"
	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/server"
	"mccp/internal/sim"
)

// traceHeader names the CSV columns RunLoad emits per packet.
const traceHeader = "conn,session,class,seq,arrival_cycle,bytes,status,wire_cycles,total_cycles,queue_ns,service_ns\n"

func main() {
	connect := flag.String("connect", "127.0.0.1:9650", "mccpserver address")
	conns := flag.Int("conns", 1, "client connections (sessions split across them; >1 trades determinism for load)")
	sessions := flag.Int("sessions", 64, "concurrent wire sessions")
	offeredMbps := flag.Float64("offered-mbps", 1000, "total offered rate on the wire clock")
	process := flag.String("process", "", "arrival process ("+strings.Join(arrivals.Names(), ", ")+"; default poisson)")
	windows := flag.Int("windows", 48, "measurement windows")
	windowCycles := flag.Uint64("window-cycles", 8192, "client batching window in wire-clock cycles")
	pipeline := flag.Int("pipeline", 0, "outstanding requests per connection (0 = default)")
	seed := flag.Uint64("seed", 31, "deterministic arrival seed")
	trace := flag.String("trace", "", "write per-request timing CSV to this file")
	traceOut := flag.String("trace-out", "", "write per-request timing JSONL (one object per line) to this file")
	serverMetrics := flag.Bool("server-metrics", false, "after the run, fetch and print the server's metrics over the STATS wire op")
	version := flag.Bool("version", false, "print version and exit")
	churn := flag.Int("churn", 0, "sessions closed and re-opened lock-step after every window boundary (the open/close churn storm)")
	churnFrom := flag.Int("churn-from", 0, "first window the churn runs after (0 = from the first boundary)")
	ioTimeout := flag.Duration("io-timeout", 0, "per-response read deadline (0 = wait forever); timeouts surface as server.ErrTimeout")
	retries := flag.Int("retries", 0, "total attempts for idempotent OPEN/CLOSE/FLUSH after a timeout (0 or 1 = no retry); resends reuse the request id, so the server dedupes")
	openStorm := flag.Bool("open-storm", false, "OPEN-admission storm instead of the open-loop load: waves of short-lived connections hammer the front door with OPENs across every class; shed non-voice OPENs are tolerated and counted (pair with mccpserver -open-burst/-open-cap), a shed voice OPEN fails the run")
	stormConns := flag.Int("storm-conns", 8, "concurrent connections per -open-storm wave")
	stormWaves := flag.Int("storm-waves", 4, "sequential -open-storm waves")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("mccploadgen"))
		return
	}

	if *openStorm {
		res, err := server.RunStorm(func() (net.Conn, error) {
			return net.Dial("tcp", *connect)
		}, server.StormConfig{
			Conns:        *stormConns,
			Waves:        *stormWaves,
			IOTimeout:    *ioTimeout,
			Retry:        server.RetryPolicy{Attempts: *retries, Seed: *seed},
			TolerateShed: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("open storm: %d connections over %d waves: %d OPENs admitted, %d non-voice OPENs shed by admission, %d packets, %d sessions closed, %d connections abandoned\n",
			res.Dialed, *stormWaves, res.Opened, res.ShedOpens, res.Packets, res.Closed, res.Abandons)
		fmt.Println("voice OPENs are never shed by admission (a shed voice OPEN fails the storm)")
		return
	}

	if *process != "" {
		if _, err := arrivals.ByName(*process, 1); err != nil {
			log.Fatalf("-process: %v", err)
		}
	}
	cfg := server.LoadConfig{
		Sessions:      *sessions,
		Mix:           harness.WireMix,
		Process:       *process,
		BitsPerCycle:  *offeredMbps * 1e6 / sim.DefaultFreqHz,
		WindowCycles:  sim.Time(*windowCycles),
		Windows:       *windows,
		Seed:          *seed,
		Conns:         *conns,
		Pipeline:      *pipeline,
		ChurnSessions: *churn,
		ChurnFrom:     *churnFrom,
		IOTimeout:     *ioTimeout,
		Retry:         server.RetryPolicy{Attempts: *retries},
	}
	switch {
	case *trace != "" && *traceOut != "":
		log.Fatal("-trace and -trace-out are mutually exclusive")
	case *trace != "":
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatalf("-trace: %v", err)
		}
		defer f.Close()
		if _, err := f.WriteString(traceHeader); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		cfg.Trace = f
	case *traceOut != "":
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("-trace-out: %v", err)
		}
		defer f.Close()
		cfg.Trace = f
		cfg.TraceJSON = true
	}

	res, err := server.RunLoad(func() (net.Conn, error) {
		return net.Dial("tcp", *connect)
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	horizon := res.HorizonCycles
	toMbps := func(bytes uint64) float64 {
		return float64(bytes*8) / float64(horizon) * sim.DefaultFreqHz / 1e6
	}
	fmt.Printf("open-loop wire load: %d sessions over %d conn(s), %.0f Mbps offered, %d windows x %d cycles:\n",
		*sessions, *conns, *offeredMbps, *windows, *windowCycles)
	fmt.Printf("%-12s %9s %9s %10s %8s %8s %8s %8s %10s %10s\n",
		"class", "submitted", "ok", "del Mbps", "rejected", "shed", "expired", "aged", "p50 cyc", "p99 cyc")
	for _, class := range qos.Classes() {
		c := res.Classes[class]
		if c.Submitted == 0 {
			continue
		}
		fmt.Printf("%-12s %9d %9d %10.0f %8d %8d %8d %8d %10d %10d\n",
			class, c.Submitted, c.OK, toMbps(c.DeliveredBytes),
			c.Rejected, c.Shed, c.Expired, c.Aged,
			qos.PercentileOf(c.WireSamples, 50), qos.PercentileOf(c.WireSamples, 99))
	}
	fmt.Printf("arrival digest (determinism check): %x\n", res.ArrivalDigest)
	if res.Churned > 0 {
		fmt.Printf("churn storm: %d sessions closed and re-opened\n", res.Churned)
	}
	if res.Stats != nil {
		fmt.Printf("server: %d sessions opened, %d cluster cycles, shard digests %x\n",
			res.Stats.SessionsOpened, res.Stats.ClusterCycles, res.Stats.Digests)
	}

	if *serverMetrics {
		nc, err := net.Dial("tcp", *connect)
		if err != nil {
			log.Fatalf("-server-metrics: %v", err)
		}
		c := server.NewClient(nc)
		text, err := c.MetricsText()
		c.Close()
		if err != nil {
			log.Fatalf("-server-metrics: %v", err)
		}
		fmt.Printf("\n# server metrics (STATS)\n%s", text)
	}
}
